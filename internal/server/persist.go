package server

// Durable domain state (DESIGN §4i). When Config.Storage is set, every
// domain mutation — session create/close, delivery-queue pushes, lock
// grant/release, archive appends, record create/grant/delete — is
// event-sourced through a WAL, and a periodic snapshot bounds both the
// log's size (compaction) and recovery time (replay starts at the
// snapshot). recovery.go replays snapshot + WAL on startup; this file
// holds the write side: snapshot gathering, the snapshot ticker, and
// the shutdown/crash paths.

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"time"

	"discover/internal/collab"
	"discover/internal/recorddb"
	"discover/internal/session"
	"discover/internal/storage"
)

// DefaultSnapshotEvery is the periodic snapshot cadence when
// Config.SnapshotEvery is zero: frequent enough to keep WAL replay (and
// so recovery time) short, rare enough that gathering the domain state
// is negligible against steering traffic.
const DefaultSnapshotEvery = time.Minute

// domainStorage bundles the durable backend with the journal the
// subsystems record through and the snapshotter's lifecycle.
type domainStorage struct {
	backend   storage.Backend
	journal   *storage.Journal
	authKey   []byte
	snapEvery time.Duration

	snapMu  sync.Mutex // serializes snapshot gathering
	stop    chan struct{}
	stopOn  sync.Once
	closeOn sync.Once

	mu        sync.Mutex
	recovered RecoveryStats
}

// newDomainStorage opens the durable side of a domain: the HMAC key is
// loaded from (or persisted to) backend metadata so tokens and
// capabilities minted before a restart still verify after it.
func newDomainStorage(cfg Config) (*domainStorage, error) {
	key, ok := cfg.Storage.GetMeta("authkey")
	if !ok {
		key = make([]byte, 32)
		if _, err := rand.Read(key); err != nil {
			return nil, fmt.Errorf("server: auth key: %w", err)
		}
		if err := cfg.Storage.SetMeta("authkey", key); err != nil {
			return nil, fmt.Errorf("server: persist auth key: %w", err)
		}
	}
	every := cfg.SnapshotEvery
	if every <= 0 {
		every = DefaultSnapshotEvery
	}
	return &domainStorage{
		backend:   cfg.Storage,
		journal:   storage.NewJournal(cfg.Storage, cfg.WalSyncEvery, cfg.Logf),
		authKey:   key,
		snapEvery: every,
		stop:      make(chan struct{}),
	}, nil
}

// startSnapshotter launches the periodic snapshot goroutine.
func (ds *domainStorage) startSnapshotter(s *Server) {
	go func() {
		t := time.NewTicker(ds.snapEvery)
		defer t.Stop()
		for {
			select {
			case <-ds.stop:
				return
			case <-t.C:
				if err := s.snapshotNow(); err != nil {
					s.cfg.Logf("server %s: snapshot failed: %v", s.cfg.Name, err)
				}
			}
		}
	}()
}

// flushMarkClean fsyncs the WAL and writes the clean-shutdown marker.
// BeginDrain calls it so that a drain followed by process exit restarts
// without replay; any append after the marker invalidates it again.
func (ds *domainStorage) flushMarkClean(logf func(string, ...any)) {
	if err := ds.backend.Sync(); err != nil {
		logf("server: drain sync: %v", err)
		return
	}
	if err := ds.backend.MarkClean(); err != nil {
		logf("server: clean marker: %v", err)
	}
}

// shutdown is the graceful-exit persistence path: final snapshot, WAL
// sync, clean-shutdown marker, backend closed.
func (ds *domainStorage) shutdown(s *Server) {
	ds.closeOn.Do(func() {
		ds.stopOn.Do(func() { close(ds.stop) })
		if err := s.snapshotNow(); err != nil {
			s.cfg.Logf("server %s: final snapshot: %v", s.cfg.Name, err)
		}
		ds.journal.Close()
		ds.flushMarkClean(s.cfg.Logf)
		if err := ds.backend.Close(); err != nil {
			s.cfg.Logf("server %s: storage close: %v", s.cfg.Name, err)
		}
	})
}

// CrashStop terminates the server the way a crash would: the daemon
// dies and the storage backend closes without a final snapshot, WAL
// sync, or clean-shutdown marker, so the next start exercises the full
// recovery path. Kill-and-recover tests (experiment R2) use it.
func (s *Server) CrashStop() {
	if ds := s.storage; ds != nil {
		// Sever the journal before any teardown runs: the lock breaks and
		// close events that in-process cleanup emits must not reach the
		// WAL — a killed process would never have written them.
		ds.journal.Detach()
	}
	s.daemon.Close()
	if ds := s.storage; ds != nil {
		ds.closeOn.Do(func() {
			ds.stopOn.Do(func() { close(ds.stop) })
			ds.journal.Close()
			ds.backend.Close()
		})
	}
}

// domainSnapshot is the gob-persisted image of a domain's durable
// state. Everything here is also reconstructible from a full WAL
// replay; the snapshot exists to bound replay length.
type domainSnapshot struct {
	AppCounter     uint64
	SessionCounter uint64
	Sessions       []sessionSnap
	Locks          map[string]string // app -> holder
	Archive        []byte            // archive.Store.SaveAll image
	Tables         []recorddb.TableDump
	Collab         []collabSnap // per-group replicated op logs
}

// collabSnap is one collaboration group's replicated-log image.
type collabSnap struct {
	App string
	Log collab.LogSnapshot
}

// sessionSnap is one session's durable state: identity, the encoded
// login token (re-verifiable because the HMAC key is persisted), the
// app binding by privilege name (the capability itself is re-minted on
// recovery), and the delivery queue's sequence position + replay ring.
type sessionSnap struct {
	ClientID string
	User     string
	Token    string
	App      string
	Priv     string
	QueueSeq uint64
	Ring     []session.Entry
}

// snapshotNow gathers and persists one domain snapshot. The WAL
// position is captured before the state: records appended while we
// gather are replayed on top of the snapshot, and every restore path is
// idempotent, so a record straddling the snapshot is harmless.
func (s *Server) snapshotNow() error {
	ds := s.storage
	if ds == nil {
		return nil
	}
	ds.snapMu.Lock()
	defer ds.snapMu.Unlock()
	seq := ds.backend.LastSeq()
	snap := domainSnapshot{
		SessionCounter: s.sessions.Counter(),
		Locks:          s.locks.Holders(),
		Tables:         s.db.Dump(),
	}
	s.mu.Lock()
	snap.AppCounter = s.counter
	s.mu.Unlock()
	for _, sess := range s.sessions.List() {
		qseq, ring := sess.Buffer.SnapshotState()
		snap.Sessions = append(snap.Sessions, sessionSnap{
			ClientID: sess.ClientID, User: sess.User, Token: sess.Token.Encode(),
			App: sess.App(), Priv: sess.Capability().Priv.String(),
			QueueSeq: qseq, Ring: ring,
		})
	}
	sort.Slice(snap.Sessions, func(i, j int) bool {
		return snap.Sessions[i].ClientID < snap.Sessions[j].ClientID
	})
	for _, app := range s.hub.Groups() {
		g := s.hub.Group(app)
		snap.Collab = append(snap.Collab, collabSnap{App: app, Log: g.SnapshotLog()})
	}
	var arch bytes.Buffer
	if err := s.store.SaveAll(&arch); err != nil {
		return err
	}
	snap.Archive = arch.Bytes()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return fmt.Errorf("server: encode snapshot: %w", err)
	}
	return ds.journal.SaveSnapshot(buf.Bytes(), seq)
}

// RecoveryStats describes the last startup recovery.
type RecoveryStats struct {
	Clean       bool    `json:"clean"`       // previous shutdown wrote the marker
	SnapshotSeq uint64  `json:"snapshotSeq"` // WAL position the snapshot covered
	Replayed    int     `json:"replayed"`    // WAL records replayed past it
	Sessions    int     `json:"sessions"`    // sessions alive after recovery
	Locks       int     `json:"locks"`       // steering locks reasserted
	DurationMS  float64 `json:"durationMs"`
}

// StorageStats is the durability block of GET /api/v1/stats; ok is
// false on a memory-only domain.
type StorageStats struct {
	Backend        string        `json:"backend"`
	WalAppends     uint64        `json:"walAppends"`
	WalBytes       uint64        `json:"walBytes"`
	LastSeq        uint64        `json:"lastSeq"`
	Snapshots      uint64        `json:"snapshots"`
	SnapshotSeq    uint64        `json:"snapshotSeq"`
	Segments       int           `json:"segments"`
	TruncatedBytes uint64        `json:"truncatedBytes"` // torn tail discarded at open
	JournalFailed  bool          `json:"journalFailed"`  // sticky failure; running in-memory
	Recovery       RecoveryStats `json:"recovery"`
}

// StorageStats reports the durable backend's counters and the last
// recovery, when the domain has one.
func (s *Server) StorageStats() (StorageStats, bool) {
	ds := s.storage
	if ds == nil {
		return StorageStats{}, false
	}
	bs := ds.backend.Stats()
	ds.mu.Lock()
	rec := ds.recovered
	ds.mu.Unlock()
	return StorageStats{
		Backend:        bs.Backend,
		WalAppends:     bs.Appends,
		WalBytes:       bs.AppendedBytes,
		LastSeq:        bs.LastSeq,
		Snapshots:      bs.Snapshots,
		SnapshotSeq:    bs.SnapshotSeq,
		Segments:       bs.Segments,
		TruncatedBytes: bs.TruncatedBytes,
		JournalFailed:  ds.journal.Failed(),
		Recovery:       rec,
	}, true
}

// walSplice recovers queue entries the in-memory replay ring rotated
// past from the durable WAL: every journaled push for clientID with a
// sequence number in (fromSeq, fromSeq+lost]. The scan walks the whole
// retained log, which compaction keeps bounded to roughly one snapshot
// interval of traffic. Returns nil on a memory-only domain or on any
// read error (the caller falls back to reporting the loss).
func (s *Server) walSplice(clientID string, fromSeq, lost uint64) []session.Entry {
	ds := s.storage
	if ds == nil {
		return nil
	}
	var out []session.Entry
	err := ds.backend.Replay(0, func(rec storage.Record) error {
		if rec.Kind != storage.KindQueuePush {
			return nil
		}
		var ev storage.QueuePushEvent
		if storage.Decode(rec, &ev) != nil {
			return nil
		}
		if ev.ClientID != clientID || ev.Seq <= fromSeq || ev.Seq > fromSeq+lost {
			return nil
		}
		out = append(out, session.Entry{Seq: ev.Seq, At: ev.At, Msg: ev.Msg})
		return nil
	})
	if err != nil {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// collabOpEvent converts a replicated collaboration op to its WAL event.
func collabOpEvent(app string, op collab.Op) storage.CollabOpEvent {
	return storage.CollabOpEvent{
		App: app, Origin: op.Origin, Seq: op.Seq, Clock: op.Clock,
		Kind: uint8(op.Kind), Client: op.Client, User: op.User,
		Sub: op.Sub, Text: op.Text, Data: op.Data, ApplySeq: op.ApplySeq,
	}
}

// opFromCollabEvent is the inverse of collabOpEvent.
func opFromCollabEvent(ev storage.CollabOpEvent) collab.Op {
	return collab.Op{
		Origin: ev.Origin, Seq: ev.Seq, Clock: ev.Clock,
		Kind: collab.OpKind(ev.Kind), Client: ev.Client, User: ev.User,
		Sub: ev.Sub, Text: ev.Text, Data: ev.Data, ApplySeq: ev.ApplySeq,
	}
}

// collabWalScan walks the retained WAL and hands every collaboration op
// recorded for app to keep. Returns false on a memory-only domain or a
// read error, so callers can distinguish "no storage" from "no match".
func (s *Server) collabWalScan(app string, keep func(collab.Op)) bool {
	ds := s.storage
	if ds == nil {
		return false
	}
	err := ds.backend.Replay(0, func(rec storage.Record) error {
		if rec.Kind != storage.KindCollabOp {
			return nil
		}
		var ev storage.CollabOpEvent
		if storage.Decode(rec, &ev) != nil {
			return nil
		}
		if ev.App != app {
			return nil
		}
		keep(opFromCollabEvent(ev))
		return nil
	})
	return err == nil
}

// collabSpliceRange recovers ops the in-memory log evicted, addressed by
// replica-invariant identity: every journaled op for (app, origin) with
// Seq in [from, to]. Anti-entropy delta exchange uses it to serve sync
// requests that reach below the memory floor. Compaction keeps the scan
// bounded to roughly one snapshot interval of traffic.
func (s *Server) collabSpliceRange(app, origin string, from, to uint64) []collab.Op {
	var out []collab.Op
	if !s.collabWalScan(app, func(op collab.Op) {
		if op.Origin == origin && op.Seq >= from && op.Seq <= to {
			out = append(out, op)
		}
	}) {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// collabSpliceApply recovers evicted ops by this domain's local apply
// order: every journaled op for app with ApplySeq in (fromApply,
// toApply]. Whiteboard watermark replay uses it when a latecomer's
// resume point fell past the in-memory window.
func (s *Server) collabSpliceApply(app string, fromApply, toApply uint64) []collab.Op {
	var out []collab.Op
	if !s.collabWalScan(app, func(op collab.Op) {
		if op.ApplySeq > fromApply && op.ApplySeq <= toApply {
			out = append(out, op)
		}
	}) {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ApplySeq < out[j].ApplySeq })
	return out
}
