package server

// The streaming delivery edge: GET /api/v1/session/{id}/stream serves
// Server-Sent Events by draining the same per-session delivery queue
// that /poll reads, so a client sees an identical message sequence on
// either path. Design constraints, in order:
//
//   - Producers never block. The queue's bounded window drops the oldest
//     entry on overflow; a stream that observes drops delivers the
//     "buffer-overflow" event and then sheds the connection, pushing the
//     cost of slowness onto the slow client (it reconnects with its
//     resume token) instead of onto the application.
//   - Idle costs nothing per tick. A parked stream blocks on the queue's
//     wakeup channel plus one process-wide heartbeat broadcast
//     (streamHub); there is no per-client ticker, and the heartbeat
//     goroutine itself only runs while at least one stream is open.
//   - Reconnects are exact. Every frame carries the queue's monotonic
//     sequence number as its SSE id; a client resuming with Last-Event-ID
//     gets the gap spliced from the replay ring, or an explicit
//     "events-lost" event when the ring has rotated past its token.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"discover/internal/session"
	"discover/internal/telemetry"
	"discover/internal/wire"
)

// DefaultStreamHeartbeat is the SSE keep-alive interval when
// Config.StreamHeartbeat is zero: frequent enough to hold intermediaries'
// idle timeouts open and to notice dead connections, rare enough to be
// free at 100k streams (one broadcast wakes them all).
const DefaultStreamHeartbeat = 15 * time.Second

// streamBatch bounds how many entries one SSE write loop iteration
// drains, so a deep backlog cannot monopolize the connection's write
// buffer before a flush.
const streamBatch = 64

// Stream telemetry, process-wide like every other discover_* series.
var (
	streamEventsTotal = telemetry.GetCounter("discover_edge_stream_events_total")
	streamLagHist     = telemetry.GetHistogram("discover_stream_delivery_lag_seconds")
	streamResumeTotal = map[string]*telemetry.Counter{
		"spliced":     telemetry.GetCounter("discover_edge_stream_resume_total", "outcome", "spliced"),
		"wal_spliced": telemetry.GetCounter("discover_edge_stream_resume_total", "outcome", "wal_spliced"),
		"lost":        telemetry.GetCounter("discover_edge_stream_resume_total", "outcome", "lost"),
		"fresh":       telemetry.GetCounter("discover_edge_stream_resume_total", "outcome", "fresh"),
	}
)

// streamHub is the shared heartbeat for every open stream on one server:
// a single ticker goroutine (running only while streams exist) closes a
// broadcast channel each interval, waking every parked stream at once —
// the zero-goroutine-per-tick structure the delivery queue's wakeup
// channel is paired with.
type streamHub struct {
	interval time.Duration

	mu   sync.Mutex
	tick chan struct{} // closed and replaced at each heartbeat
	n    int           // open streams
	stop chan struct{} // stops the ticker goroutine when n drops to 0
}

func newStreamHub(interval time.Duration) *streamHub {
	if interval <= 0 {
		interval = DefaultStreamHeartbeat
	}
	return &streamHub{interval: interval, tick: make(chan struct{})}
}

// join registers a stream, starting the heartbeat goroutine on the first.
func (h *streamHub) join() {
	h.mu.Lock()
	h.n++
	if h.n == 1 {
		h.stop = make(chan struct{})
		go h.run(h.stop)
	}
	h.mu.Unlock()
}

// leave unregisters a stream, stopping the heartbeat after the last.
func (h *streamHub) leave() {
	h.mu.Lock()
	h.n--
	if h.n == 0 {
		close(h.stop)
	}
	h.mu.Unlock()
}

func (h *streamHub) run(stop chan struct{}) {
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			h.mu.Lock()
			close(h.tick)
			h.tick = make(chan struct{})
			h.mu.Unlock()
		}
	}
}

// tickCh returns the current heartbeat broadcast channel; it closes at
// the next tick.
func (h *streamHub) tickCh() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tick
}

// parseResumeToken extracts the client's resume position from the
// Last-Event-ID header (standard SSE reconnect) or the ?from= query
// parameter (first connect after a polling session, or curl).
func parseResumeToken(r *http.Request) (seq uint64, ok bool, err error) {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("from")
	}
	if v == "" {
		return 0, false, nil
	}
	seq, err = strconv.ParseUint(v, 10, 64)
	return seq, err == nil, err
}

// writeEntry emits one SSE frame: "id: <seq>" (omitted for synthetic
// events, which are not resumable positions) then the message as one
// JSON data line.
func writeEntry(w io.Writer, seq uint64, m *wire.Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if seq > 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", seq); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", data)
	return err
}

// handleSessionStream serves the SSE delivery stream for one session.
func (s *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	resume, hasResume, err := parseResumeToken(r)
	if err != nil {
		writeErrCode(w, CodeBadRequest, "bad resume token: "+err.Error(), 0)
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeErrCode(w, CodeInternal, "transport does not support streaming", 0)
		return
	}
	if ok, reason := s.gate.enterStream(); !ok {
		writeErrCode(w, reason, "edge admission: "+string(reason),
			s.gate.retryAfter.Milliseconds())
		return
	}
	defer s.gate.leaveStream()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	s.streams.join()
	defer s.streams.leave()

	q := sess.Buffer
	if hasResume {
		ents, lost := q.Resume(resume)
		outcome := "fresh"
		switch {
		case lost > 0:
			outcome = "lost"
		case len(ents) > 0:
			outcome = "spliced"
		}
		if lost > 0 {
			// The in-memory ring rotated past the token, but on a durable
			// domain the missing entries are still in the WAL: splice them
			// from disk and report only what even the log no longer has
			// (compacted away below the last snapshot).
			if walEnts := s.walSplice(sess.ClientID, resume, lost); len(walEnts) > 0 {
				lost -= uint64(len(walEnts))
				ents = append(walEnts, ents...)
				outcome = "wal_spliced"
			}
		}
		streamResumeTotal[outcome].Inc()
		if lost > 0 {
			if writeEntry(w, 0, wire.NewEvent(s.cfg.Name, session.LostEvent,
				strconv.FormatUint(lost, 10))) != nil {
				return
			}
		}
		if !s.writeEntries(w, ents) {
			return
		}
		fl.Flush()
	}

	for {
		ents, overflow := q.DrainEntries(streamBatch)
		if overflow > 0 {
			// The client fell behind the bounded window while we were
			// blocked writing to it: report the gap, then shed the
			// connection so the slow client pays for its slowness by
			// reconnecting (with its resume token) instead of the
			// producer paying by blocking.
			writeEntry(w, 0, wire.NewEvent(s.cfg.Name, session.OverflowEvent,
				strconv.FormatUint(overflow, 10)))
			s.writeEntries(w, ents)
			fl.Flush()
			return
		}
		if len(ents) > 0 {
			if !s.writeEntries(w, ents) {
				return
			}
			fl.Flush()
			continue // keep draining a backlog before parking
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.gate.drained():
			writeEntry(w, 0, wire.NewEvent(s.cfg.Name, "server-draining", ""))
			fl.Flush()
			return
		case <-q.Wakeup():
		case <-s.streams.tickCh():
			// Heartbeat comment: keeps intermediaries from idling the
			// connection out, and surfaces a dead peer as a write error.
			if _, err := io.WriteString(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeEntries emits a batch of frames, recording delivery lag and the
// events-total counter; false means the connection is gone.
func (s *Server) writeEntries(w io.Writer, ents []session.Entry) bool {
	now := time.Now()
	for _, e := range ents {
		if writeEntry(w, e.Seq, e.Msg) != nil {
			return false
		}
		streamLagHist.Observe(now.Sub(e.At))
		streamEventsTotal.Inc()
	}
	return true
}

// EventsResponse is the long-poll drain of the delivery queue, with the
// resume token to hand to /stream for an in-order upgrade.
type EventsResponse struct {
	Messages    []*wire.Message `json:"messages"`
	LastEventID uint64          `json:"lastEventId"`
}

// maxEventsWait caps ?wait= so a stuck client cannot hold an in-flight
// admission slot indefinitely (same bound as /poll's waitms).
const maxEventsWait = 30 * time.Second

// handleSessionEvents is the long-poll sibling of the stream:
// GET /api/v1/session/{id}/events?wait=2s blocks on the delivery queue
// until a message arrives or the wait expires, cutting the empty-poll
// round trips of clients that never upgrade to SSE.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	q := r.URL.Query()
	max, _ := strconv.Atoi(q.Get("max"))
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeErrCode(w, CodeBadRequest, "bad wait duration: "+err.Error(), 0)
			return
		}
		if d > maxEventsWait {
			d = maxEventsWait
		}
		wait = d
	}
	ents, overflow := sess.Buffer.DrainEntriesWait(max, wait, r.Context().Done())
	resp := EventsResponse{Messages: make([]*wire.Message, 0, len(ents)+1)}
	if overflow > 0 {
		resp.Messages = append(resp.Messages, wire.NewEvent(s.cfg.Name,
			session.OverflowEvent, strconv.FormatUint(overflow, 10)))
	}
	for _, e := range ents {
		resp.Messages = append(resp.Messages, e.Msg)
		resp.LastEventID = e.Seq
	}
	writeJSON(w, http.StatusOK, resp)
}
