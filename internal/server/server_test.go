package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"discover/internal/app"
	"discover/internal/appproto"
	"discover/internal/auth"
	"discover/internal/session"
	"discover/internal/wire"
)

// testDeployment is one server plus one connected application.
type testDeployment struct {
	srv *Server
	app *appproto.Session
}

func deploy(t *testing.T, opts ...func(*Config)) *testDeployment {
	t.Helper()
	cfg := Config{Name: "rutgers", RecordUpdates: true, Logf: func(string, ...any) {}}
	for _, o := range opts {
		o(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ListenDaemon("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Auth().SetUserSecret("alice", "pw")
	s.Auth().SetUserSecret("bob", "pw")
	s.Auth().SetUserSecret("eve", "pw")

	rt, err := app.NewRuntime(app.Config{
		Name:         "wave",
		Kernel:       app.NewSeismic1D(64),
		ComputeSteps: 2,
		Users: []app.UserGrant{
			{User: "alice", Privilege: "steer"},
			{User: "bob", Privilege: "monitor"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	as, err := appproto.Dial(context.Background(), s.Daemon().Addr(), rt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { as.Close() })

	// Wait until the server registers the application.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.LocalAppIDs()) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if len(s.LocalAppIDs()) == 0 {
		t.Fatal("application never registered")
	}
	return &testDeployment{srv: s, app: as}
}

func (d *testDeployment) login(t *testing.T, user string) *session.Session {
	t.Helper()
	sess, err := d.srv.Login(context.Background(), user, "pw")
	if err != nil {
		t.Fatalf("login %s: %v", user, err)
	}
	return sess
}

func (d *testDeployment) connect(t *testing.T, sess *session.Session) string {
	t.Helper()
	appID := d.app.AppID()
	if _, err := d.srv.ConnectApp(context.Background(), sess, appID); err != nil {
		t.Fatalf("connect: %v", err)
	}
	return appID
}

// pump runs application phases until the predicate is satisfied.
func (d *testDeployment) pump(t *testing.T, until func() bool) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if until() {
			return
		}
		if _, err := d.app.RunPhase(); err != nil {
			t.Fatalf("RunPhase: %v", err)
		}
	}
	if !until() {
		t.Fatal("condition never satisfied after 200 phases")
	}
}

func TestServerNameValidation(t *testing.T) {
	if _, err := New(Config{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New(Config{Name: "a/b"}); err == nil {
		t.Error("name with / accepted")
	}
	if _, err := New(Config{Name: "a#1"}); err == nil {
		t.Error("name with # accepted")
	}
}

func TestIDExtraction(t *testing.T) {
	if got := ServerOfApp("rutgers#12"); got != "rutgers" {
		t.Errorf("ServerOfApp = %q", got)
	}
	if got := ServerOfApp("noseparator"); got != "" {
		t.Errorf("ServerOfApp without # = %q", got)
	}
	if got := ServerOfClient("caltech/client-3"); got != "caltech" {
		t.Errorf("ServerOfClient = %q", got)
	}
}

func TestAppRegistrationBuildsACL(t *testing.T) {
	d := deploy(t)
	appID := d.app.AppID()
	if got := d.srv.PrivilegeName("alice", appID); got != "steer" {
		t.Errorf("alice privilege = %q", got)
	}
	if got := d.srv.PrivilegeName("bob", appID); got != "monitor" {
		t.Errorf("bob privilege = %q", got)
	}
	if got := d.srv.PrivilegeName("eve", appID); got != "none" {
		t.Errorf("eve privilege = %q", got)
	}
}

func TestAppsVisibilityFollowsACL(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	eve := d.login(t, "eve")
	if apps := d.srv.Apps(context.Background(), alice.User); len(apps) != 1 || apps[0].Privilege != "steer" {
		t.Errorf("alice apps = %v", apps)
	}
	if apps := d.srv.Apps(context.Background(), eve.User); len(apps) != 0 {
		t.Errorf("eve apps = %v (ACL leak)", apps)
	}
}

func TestConnectAndCommandRoundTrip(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	appID := d.connect(t, alice)

	// Acquire the steering lock, then steer.
	granted, _, err := d.srv.LockOp(context.Background(), alice, true)
	if err != nil || !granted {
		t.Fatalf("lock: %v %v", granted, err)
	}
	_, err = d.srv.SubmitCommand(context.Background(), alice, "set_param", []wire.Param{
		{Key: "name", Value: "source_freq"}, {Key: "value", Value: "0.2"},
	})
	if err != nil {
		t.Fatalf("SubmitCommand: %v", err)
	}

	var resp *wire.Message
	d.pump(t, func() bool {
		for _, m := range alice.Buffer.Drain(0) {
			if m.Kind == wire.KindResponse && m.Op == "set_param" {
				resp = m
				return true
			}
		}
		return false
	})
	if resp.App != appID {
		t.Errorf("response app = %q", resp.App)
	}
	if v := d.app.Runtime().Params().MustGet("source_freq"); v != 0.2 {
		t.Errorf("param = %v after steering", v)
	}
}

func TestUpdatesReachConnectedClients(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	d.connect(t, alice)
	var sawUpdate bool
	d.pump(t, func() bool {
		for _, m := range alice.Buffer.Drain(0) {
			if m.Kind == wire.KindUpdate {
				sawUpdate = true
			}
		}
		return sawUpdate
	})
}

func TestMonitorCannotSteer(t *testing.T) {
	d := deploy(t)
	bob := d.login(t, "bob")
	d.connect(t, bob)
	_, err := d.srv.SubmitCommand(context.Background(), bob, "set_param", []wire.Param{
		{Key: "name", Value: "source_freq"}, {Key: "value", Value: "0.3"},
	})
	if !errors.Is(err, ErrDenied) {
		t.Errorf("monitor steering err = %v, want ErrDenied", err)
	}
	// Monitor-level queries are fine.
	if _, err := d.srv.SubmitCommand(context.Background(), bob, "status", nil); err != nil {
		t.Errorf("monitor status err = %v", err)
	}
	// Monitor cannot take the lock either.
	if _, _, err := d.srv.LockOp(context.Background(), bob, true); !errors.Is(err, ErrDenied) {
		t.Errorf("monitor lock err = %v", err)
	}
}

func TestSteeringRequiresLock(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	d.connect(t, alice)
	_, err := d.srv.SubmitCommand(context.Background(), alice, "set_param", []wire.Param{
		{Key: "name", Value: "source_freq"}, {Key: "value", Value: "0.3"},
	})
	if !errors.Is(err, ErrNeedLock) {
		t.Errorf("steer without lock: %v, want ErrNeedLock", err)
	}
}

func TestOnlyOneDriverAtATime(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	d.connect(t, alice)
	alice2 := d.login(t, "alice") // second portal, same user
	d.connect(t, alice2)

	if granted, _, _ := d.srv.LockOp(context.Background(), alice, true); !granted {
		t.Fatal("first lock denied")
	}
	granted, holder, _ := d.srv.LockOp(context.Background(), alice2, true)
	if granted {
		t.Fatal("two clients hold the steering lock")
	}
	if holder != alice.ClientID {
		t.Errorf("holder = %q", holder)
	}
	// Lock released -> second client may steer.
	if _, _, err := d.srv.LockOp(context.Background(), alice, false); err != nil {
		t.Fatal(err)
	}
	if granted, _, _ := d.srv.LockOp(context.Background(), alice2, true); !granted {
		t.Error("lock not acquirable after release")
	}
}

func TestUnknownAppConnect(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	if _, err := d.srv.ConnectApp(context.Background(), alice, "rutgers#999"); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("connect unknown local app: %v", err)
	}
	if _, err := d.srv.ConnectApp(context.Background(), alice, "caltech#1"); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("connect remote app without federation: %v", err)
	}
}

func TestCommandWithoutConnect(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	if _, err := d.srv.SubmitCommand(context.Background(), alice, "status", nil); !errors.Is(err, ErrNotConnected) {
		t.Errorf("command without connect: %v", err)
	}
}

func TestCollaborationSharing(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	bob := d.login(t, "bob")
	d.connect(t, alice)
	d.connect(t, bob)
	d.srv.LockOp(context.Background(), alice, true)

	// Alice's responses are shared with bob (both collaboration-enabled).
	if _, err := d.srv.SubmitCommand(context.Background(), alice, "status", nil); err != nil {
		t.Fatal(err)
	}
	var bobSaw bool
	d.pump(t, func() bool {
		for _, m := range bob.Buffer.Drain(0) {
			if m.Kind == wire.KindResponse && m.Op == "status" && m.Client == alice.ClientID {
				bobSaw = true
			}
		}
		return bobSaw
	})

	// Alice disables collaboration; her next response stays private.
	if err := d.srv.SetCollaboration(alice, false); err != nil {
		t.Fatal(err)
	}
	if _, err := d.srv.SubmitCommand(context.Background(), alice, "status", nil); err != nil {
		t.Fatal(err)
	}
	var aliceGot bool
	d.pump(t, func() bool {
		for _, m := range alice.Buffer.Drain(0) {
			if m.Kind == wire.KindResponse && m.Op == "status" {
				aliceGot = true
			}
		}
		return aliceGot
	})
	for _, m := range bob.Buffer.Drain(0) {
		if m.Kind == wire.KindResponse && m.Client == alice.ClientID {
			t.Error("private response leaked to bob")
		}
	}
}

func TestChatAndWhiteboard(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	bob := d.login(t, "bob")
	d.connect(t, alice)
	d.connect(t, bob)

	if err := d.srv.Chat(context.Background(), alice, "hello bob"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range bob.Buffer.Drain(0) {
		if m.Kind == wire.KindChat && m.Text == "hello bob" {
			found = true
		}
	}
	if !found {
		t.Error("chat not delivered")
	}

	if err := d.srv.Whiteboard(context.Background(), alice, []byte("stroke-1")); err != nil {
		t.Fatal(err)
	}
	// A latecomer replays the whiteboard on join.
	carol := d.login(t, "alice")
	d.connect(t, carol)
	var replayed bool
	for _, m := range carol.Buffer.Drain(0) {
		if m.Kind == wire.KindWhiteboard && string(m.Data) == "stroke-1" {
			replayed = true
		}
	}
	if !replayed {
		t.Error("latecomer did not replay whiteboard")
	}
}

func TestReplayLog(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	d.connect(t, alice)
	d.srv.LockOp(context.Background(), alice, true)
	for _, op := range []string{"status", "get_param"} {
		params := []wire.Param{}
		if op == "get_param" {
			params = append(params, wire.Param{Key: "name", Value: "source_freq"})
		}
		if _, err := d.srv.SubmitCommand(context.Background(), alice, op, params); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := d.srv.Replay(alice, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Commands are archived immediately at the client's server.
	ops := map[string]bool{}
	for _, e := range entries {
		ops[e.Msg.Op] = true
	}
	if !ops["status"] || !ops["get_param"] {
		t.Errorf("replay missing commands: %v", ops)
	}
}

func TestRecordOwnership(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	bob := d.login(t, "bob")
	d.connect(t, alice)
	d.connect(t, bob)
	d.srv.LockOp(context.Background(), alice, true)

	if _, err := d.srv.SubmitCommand(context.Background(), alice, "status", nil); err != nil {
		t.Fatal(err)
	}
	d.pump(t, func() bool {
		recs, _ := d.srv.QueryRecords(alice, "responses", nil)
		return len(recs) > 0
	})

	// Response records belong to the requesting user; bob cannot see them.
	recs, err := d.srv.QueryRecords(bob, "responses", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Owner == "alice" {
			t.Error("bob can read alice's response records")
		}
	}

	// Periodic update records: owned by the app owner (alice, first steer
	// user) with read-only grants for all ACL users, so bob sees them.
	d.pump(t, func() bool {
		recs, _ := d.srv.QueryRecords(bob, "updates", nil)
		return len(recs) > 0
	})
	recs, _ = d.srv.QueryRecords(bob, "updates", nil)
	if recs[0].Owner != "alice" {
		t.Errorf("update record owner = %q, want alice", recs[0].Owner)
	}
}

func TestAppCloseNotifiesGroupAndCleansUp(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	appID := d.connect(t, alice)
	d.srv.LockOp(context.Background(), alice, true)

	d.app.Close()
	deadline := time.Now().Add(2 * time.Second)
	closed := false
	for time.Now().Before(deadline) && !closed {
		for _, m := range alice.Buffer.Drain(0) {
			if m.Kind == wire.KindEvent && m.Op == "app-closed" {
				closed = true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !closed {
		t.Fatal("group never heard app-closed")
	}
	if len(d.srv.LocalAppIDs()) != 0 {
		t.Error("closed app still listed")
	}
	if _, held := d.srv.Locks().Holder(appID); held {
		t.Error("lock survived app close")
	}
	if got := d.srv.PrivilegeName("alice", appID); got != "none" {
		t.Error("ACL survived app close")
	}
}

func TestLogoutReleasesLock(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	appID := d.connect(t, alice)
	d.srv.LockOp(context.Background(), alice, true)
	d.srv.Logout(context.Background(), alice)
	if _, held := d.srv.Locks().Holder(appID); held {
		t.Error("lock survived logout")
	}
	if _, ok := d.srv.Sessions().Peek(alice.ClientID); ok {
		t.Error("session survived logout")
	}
}

func TestReapIdleSessions(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	appID := d.connect(t, alice)
	d.srv.LockOp(context.Background(), alice, true)
	bob := d.login(t, "bob")
	d.connect(t, bob)

	// alice goes idle; bob keeps polling.
	time.Sleep(30 * time.Millisecond)
	d.srv.Sessions().Get(bob.ClientID) // refreshes bob's activity

	reaped := d.srv.ReapIdleSessions(20 * time.Millisecond)
	if reaped != 1 {
		t.Fatalf("reaped %d sessions, want 1", reaped)
	}
	if _, ok := d.srv.Sessions().Peek(alice.ClientID); ok {
		t.Error("idle session survived the janitor")
	}
	if _, ok := d.srv.Sessions().Peek(bob.ClientID); !ok {
		t.Error("active session was reaped")
	}
	if _, held := d.srv.Locks().Holder(appID); held {
		t.Error("idle session's lock survived the janitor")
	}
	members := d.srv.Hub().Group(appID).Members()
	for _, m := range members {
		if m == alice.ClientID {
			t.Error("idle session still in the collaboration group")
		}
	}
}

func TestStartJanitorLoop(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	stop := d.srv.StartJanitor(10*time.Millisecond, 20*time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := d.srv.Sessions().Peek(alice.ClientID); !ok {
			stop()
			stop() // idempotent
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("janitor never reaped the idle session")
}

func TestForgedCapabilityRejected(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	appID := d.connect(t, alice)
	// Swap in a forged capability claiming steer; the MAC won't verify.
	alice.Connect(appID, auth.Capability{
		User: "alice", App: appID, Priv: auth.Steer, Server: "rutgers", Expiry: 1 << 62,
	})
	if _, err := d.srv.SubmitCommand(context.Background(), alice, "status", nil); !errors.Is(err, auth.ErrBadToken) {
		t.Errorf("command with forged capability: %v, want ErrBadToken", err)
	}
}
