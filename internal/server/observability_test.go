package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"discover/internal/telemetry"
)

// deployObservable deploys a server with 1-in-1 trace sampling and an
// HTTP listener, resetting the process-wide telemetry state around it.
func deployObservable(t *testing.T, opts ...func(*Config)) (*testDeployment, *httpClient) {
	t.Helper()
	telemetry.Reset()
	t.Cleanup(telemetry.Reset)
	d := deploy(t, opts...)
	ts := httptest.NewServer(d.srv.HTTPHandler())
	t.Cleanup(ts.Close)
	return d, &httpClient{t: t, base: ts.URL}
}

// TestTraceEndpoint drives one sampled command and retrieves its trace
// through the portal API.
func TestTraceEndpoint(t *testing.T) {
	d, c := deployObservable(t, func(cfg *Config) { cfg.TraceSampleEvery = 1 })

	lr, code := c.login("alice", "pw")
	if code != 200 {
		t.Fatalf("login -> %d", code)
	}
	var conn ConnectResponse
	if code := c.post("/api/connect", ConnectRequest{ClientID: lr.ClientID, App: d.app.AppID()}, &conn); code != 200 {
		t.Fatalf("connect -> %d", code)
	}
	var cr CommandResponse
	if code := c.post("/api/command", CommandRequest{ClientID: lr.ClientID, Op: "status"}, &cr); code != 200 {
		t.Fatalf("command -> %d", code)
	}
	if cr.TraceID == "" {
		t.Fatal("sampled command returned no traceId")
	}

	var rec telemetry.TraceRecord
	if code := c.get("/api/trace/"+cr.TraceID, &rec); code != 200 {
		t.Fatalf("GET /api/trace/%s -> %d", cr.TraceID, code)
	}
	if rec.ID != cr.TraceID || len(rec.Spans) == 0 {
		t.Fatalf("trace record = %+v", rec)
	}
	foundEdge := false
	for _, sp := range rec.Spans {
		if sp.Hop == telemetry.HopEdge && sp.DurNanos > 0 {
			foundEdge = true
		}
	}
	if !foundEdge {
		t.Errorf("no edge span in %+v", rec.Spans)
	}

	var recent []telemetry.TraceRecord
	if code := c.get("/api/trace?max=10", &recent); code != 200 || len(recent) == 0 {
		t.Errorf("GET /api/trace -> %d, %d records", code, len(recent))
	}

	if code := c.get("/api/trace/zz-not-hex", nil); code != 400 {
		t.Errorf("bad trace id -> %d, want 400", code)
	}
	if code := c.get("/api/trace/00000000000000ff", nil); code != 404 {
		t.Errorf("unknown trace id -> %d, want 404", code)
	}
}

// TestMetricsEndpoint scrapes GET /metrics and checks the Prometheus text
// exposition shape.
func TestMetricsEndpoint(t *testing.T) {
	_, c := deployObservable(t)

	// Populate a histogram the way the middleware does.
	telemetry.GetHistogram("discover_test_scrape_seconds", "op", "unit").Observe(3 * time.Millisecond)

	resp, err := http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics -> %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE discover_test_scrape_seconds histogram",
		`discover_test_scrape_seconds_bucket{op="unit",le="+Inf"} 1`,
		`discover_test_scrape_seconds_count{op="unit"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output lacks %q:\n%s", want, out)
		}
	}
}

// TestPprofGated checks that the profiling endpoints exist only when the
// config enables them.
func TestPprofGated(t *testing.T) {
	_, off := deployObservable(t)
	if code := off.get("/debug/pprof/cmdline", nil); code != 404 {
		t.Errorf("pprof disabled but /debug/pprof/cmdline -> %d", code)
	}
	_, on := deployObservable(t, func(cfg *Config) { cfg.EnablePprof = true })
	if code := on.get("/debug/pprof/cmdline", nil); code != 200 {
		t.Errorf("pprof enabled but /debug/pprof/cmdline -> %d", code)
	}
}
