package server

import (
	"fmt"
	"net/http"
	"net/url"
	"testing"
)

// collabSetup logs in, connects to the deployment's app, and returns the
// client id.
func collabSetup(t *testing.T, c *httpClient) (string, string) {
	t.Helper()
	lr, _ := c.login("alice", "pw")
	var apps AppsResponse
	c.get("/api/v1/apps?client="+lr.ClientID, &apps)
	if len(apps.Apps) != 1 {
		t.Fatalf("apps = %+v", apps)
	}
	appID := apps.Apps[0].ID
	if code := c.post("/api/v1/connect", ConnectRequest{ClientID: lr.ClientID, App: appID}, nil); code != 200 {
		t.Fatalf("connect -> %d", code)
	}
	return lr.ClientID, appID
}

// TestCollabResource exercises GET /api/v1/session/{id}/collab: the
// session's own mode, the converged membership fold, and the log
// summary.
func TestCollabResource(t *testing.T) {
	_, c := deployHTTP(t)
	clientID, appID := collabSetup(t, c)

	var info CollabInfoResponse
	if code := c.get("/api/v1/session/"+url.PathEscape(clientID)+"/collab", &info); code != 200 {
		t.Fatalf("collab -> %d", code)
	}
	if info.App != appID || !info.Enabled || info.Sub != "" {
		t.Fatalf("collab info = %+v", info)
	}
	if len(info.Group) != 1 || info.Group[0].Client != clientID || info.Group[0].Origin != "rutgers" {
		t.Fatalf("converged members = %+v", info.Group)
	}
	if info.Log.Origin != "rutgers" || info.Log.Ops == 0 || info.Log.Hash == "" {
		t.Fatalf("log summary = %+v", info.Log)
	}

	// Sub-group switch and disable both surface in the resource.
	sub, off := "ops-room", false
	c.post("/api/v1/collab", CollabRequest{ClientID: clientID, Sub: &sub}, nil)
	c.post("/api/v1/collab", CollabRequest{ClientID: clientID, Enabled: &off}, nil)
	c.get("/api/v1/session/"+url.PathEscape(clientID)+"/collab", &info)
	if info.Enabled || info.Sub != sub {
		t.Fatalf("after switch: %+v", info)
	}
	if len(info.Group) != 1 || info.Group[0].Sub != sub {
		t.Fatalf("fold missed sub switch: %+v", info.Group)
	}

	// Unknown session → session_not_found envelope.
	var er ErrorResponse
	if code := c.get("/api/v1/session/nope/collab", &er); code != http.StatusUnauthorized ||
		er.Error.Code != CodeSessionNotFound {
		t.Fatalf("unknown session -> %d %+v", code, er)
	}
}

// TestWhiteboardWatermarkReplay exercises GET
// /api/v1/session/{id}/whiteboard: full replay at from=0, incremental
// resume from the returned watermark, and bad_watermark on malformed or
// ahead-of-head values.
func TestWhiteboardWatermarkReplay(t *testing.T) {
	_, c := deployHTTP(t)
	clientID, _ := collabSetup(t, c)

	for i := 0; i < 5; i++ {
		code := c.post("/api/v1/whiteboard", WhiteboardRequest{ClientID: clientID, Stroke: []byte{byte(i)}}, nil)
		if code != 200 {
			t.Fatalf("stroke %d -> %d", i, code)
		}
	}

	var wb WhiteboardResponse
	if code := c.get("/api/v1/session/"+url.PathEscape(clientID)+"/whiteboard", &wb); code != 200 {
		t.Fatalf("whiteboard -> %d", code)
	}
	if len(wb.Strokes) != 5 || wb.Missed != 0 {
		t.Fatalf("full replay = %+v", wb)
	}
	for i, st := range wb.Strokes {
		if st.Data[0] != byte(i) || st.Origin != "rutgers" {
			t.Fatalf("stroke %d = %+v", i, st)
		}
	}

	// Resume from the watermark: only newer strokes.
	c.post("/api/v1/whiteboard", WhiteboardRequest{ClientID: clientID, Stroke: []byte{9}}, nil)
	var inc WhiteboardResponse
	c.get(fmt.Sprintf("/api/v1/session/%s/whiteboard?from=%d", url.PathEscape(clientID), wb.Watermark), &inc)
	if len(inc.Strokes) != 1 || inc.Strokes[0].Data[0] != 9 {
		t.Fatalf("incremental replay = %+v", inc)
	}
	// Caught up: empty, same watermark.
	var empty WhiteboardResponse
	c.get(fmt.Sprintf("/api/v1/session/%s/whiteboard?from=%d", url.PathEscape(clientID), inc.Watermark), &empty)
	if len(empty.Strokes) != 0 || empty.Watermark != inc.Watermark {
		t.Fatalf("caught-up replay = %+v", empty)
	}

	// Malformed and ahead-of-head watermarks → bad_watermark envelope.
	var er ErrorResponse
	if code := c.get("/api/v1/session/"+url.PathEscape(clientID)+"/whiteboard?from=banana", &er); code != http.StatusBadRequest ||
		er.Error.Code != CodeBadWatermark {
		t.Fatalf("malformed watermark -> %d %+v", code, er)
	}
	if code := c.get(fmt.Sprintf("/api/v1/session/%s/whiteboard?from=%d", url.PathEscape(clientID), inc.Watermark+100), &er); code != http.StatusBadRequest ||
		er.Error.Code != CodeBadWatermark {
		t.Fatalf("future watermark -> %d %+v", code, er)
	}
}

// TestCollabErrorCodes pins the new registry entries' envelopes:
// collab_disabled (409) on mutations from a disabled session, and
// not_connected for sessions with no app.
func TestCollabErrorCodes(t *testing.T) {
	_, c := deployHTTP(t)
	clientID, _ := collabSetup(t, c)

	off := false
	c.post("/api/v1/collab", CollabRequest{ClientID: clientID, Enabled: &off}, nil)
	var er ErrorResponse
	if code := c.post("/api/v1/chat", ChatRequest{ClientID: clientID, Text: "hi"}, &er); code != http.StatusConflict ||
		er.Error.Code != CodeCollabDisabled {
		t.Fatalf("disabled chat -> %d %+v", code, er)
	}
	if code := c.post("/api/v1/whiteboard", WhiteboardRequest{ClientID: clientID, Stroke: []byte{1}}, &er); code != http.StatusConflict ||
		er.Error.Code != CodeCollabDisabled {
		t.Fatalf("disabled whiteboard -> %d %+v", code, er)
	}

	// A session that never connected has no group to read.
	lr, _ := c.login("bob", "pw")
	if code := c.get("/api/v1/session/"+url.PathEscape(lr.ClientID)+"/collab", &er); code != http.StatusNotFound ||
		er.Error.Code != CodeNotConnected {
		t.Fatalf("unconnected collab -> %d %+v", code, er)
	}
}
