package server

// Startup recovery (DESIGN §4i): rebuild the domain from the durable
// backend — apply the newest snapshot, replay the WAL records past it,
// then re-arm the live half of the state (capabilities re-minted,
// collaboration groups rejoined, steering locks reasserted). Every
// apply path is idempotent, so a record the snapshot already covered
// replays harmlessly.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strconv"
	"strings"
	"time"

	"discover/internal/archive"
	"discover/internal/auth"
	"discover/internal/session"
	"discover/internal/storage"
	"discover/internal/wire"
)

// pendingBinding is a session→app attachment seen during recovery; the
// capability is re-minted only once, after the final replayed state is
// known.
type pendingBinding struct{ app, priv string }

// recoverFromStorage replays snapshot + WAL into the (empty) domain.
// Called from New before the server is reachable, so no locks race it.
func (s *Server) recoverFromStorage() error {
	ds := s.storage
	b := ds.backend
	t0 := time.Now()
	clean := b.WasClean()

	bindings := make(map[string]pendingBinding)
	holders := make(map[string]string)

	state, snapSeq, err := b.LoadSnapshot()
	if err != nil {
		return fmt.Errorf("server: load snapshot: %w", err)
	}
	if len(state) > 0 {
		var snap domainSnapshot
		if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&snap); err != nil {
			return fmt.Errorf("server: decode snapshot: %w", err)
		}
		s.mu.Lock()
		if snap.AppCounter > s.counter {
			s.counter = snap.AppCounter
		}
		s.mu.Unlock()
		s.sessions.SetCounter(snap.SessionCounter)
		for _, ss := range snap.Sessions {
			tok, err := auth.ParseToken(ss.Token)
			if err != nil {
				continue
			}
			sess := s.sessions.Restore(ss.ClientID, ss.User, tok)
			sess.Buffer.RestoreState(ss.QueueSeq, ss.Ring)
			if ss.App != "" {
				bindings[ss.ClientID] = pendingBinding{app: ss.App, priv: ss.Priv}
			}
		}
		for app, owner := range snap.Locks {
			holders[app] = owner
		}
		if len(snap.Archive) > 0 {
			if err := s.store.LoadAll(bytes.NewReader(snap.Archive)); err != nil {
				return fmt.Errorf("server: load archive: %w", err)
			}
		}
		s.db.Restore(snap.Tables)
		for _, cs := range snap.Collab {
			s.hub.Group(cs.App).RestoreLog(cs.Log)
		}
	}

	// Replay the log past the snapshot. Records that fail to decode are
	// skipped rather than fatal: one corrupt event must not keep a whole
	// domain from booting.
	replayed := 0
	err = b.Replay(snapSeq, func(rec storage.Record) error {
		replayed++
		switch rec.Kind {
		case storage.KindSessionCreate:
			var ev storage.SessionCreateEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			tok, err := auth.ParseToken(ev.Token)
			if err != nil {
				return nil
			}
			s.sessions.Restore(ev.ClientID, ev.User, tok)
		case storage.KindSessionRemove:
			var ev storage.SessionRemoveEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			s.sessions.RestoreRemove(ev.ClientID)
			delete(bindings, ev.ClientID)
		case storage.KindSessionConnect:
			var ev storage.SessionConnectEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			bindings[ev.ClientID] = pendingBinding{app: ev.App, priv: ev.Priv}
		case storage.KindSessionDisconnect:
			var ev storage.SessionDisconnectEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			delete(bindings, ev.ClientID)
		case storage.KindQueuePush:
			var ev storage.QueuePushEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			if sess, ok := s.sessions.Peek(ev.ClientID); ok {
				sess.Buffer.RestoreEntry(session.Entry{Seq: ev.Seq, At: ev.At, Msg: ev.Msg})
			}
		case storage.KindLockGrant:
			var ev storage.LockGrantEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			holders[ev.App] = ev.Owner
		case storage.KindLockRelease:
			var ev storage.LockReleaseEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			if holders[ev.App] == ev.Owner {
				delete(holders, ev.App)
			}
		case storage.KindArchiveAppend:
			var ev storage.ArchiveAppendEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			s.store.ApplyAppend(ev.Family, ev.App,
				archive.Entry{Seq: ev.Seq, Time: ev.At, Client: ev.Client, Msg: ev.Msg})
		case storage.KindRecordInsert:
			var ev storage.RecordInsertEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			s.db.Table(ev.Table).ApplyInsert(ev.ID, ev.Owner, ev.At, ev.Fields, ev.Readers)
		case storage.KindRecordGrant:
			var ev storage.RecordGrantEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			if t, err := s.db.Lookup(ev.Table); err == nil {
				t.ApplyGrant(ev.ID, ev.User)
			}
		case storage.KindRecordDelete:
			var ev storage.RecordDeleteEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			if t, err := s.db.Lookup(ev.Table); err == nil {
				t.ApplyDelete(ev.ID)
			}
		case storage.KindCollabOp:
			var ev storage.CollabOpEvent
			if storage.Decode(rec, &ev) != nil {
				return nil
			}
			s.hub.Group(ev.App).RestoreOp(opFromCollabEvent(ev))
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("server: replay: %w", err)
	}

	// Re-arm the live half: app bindings get freshly minted capabilities
	// (the originals lived only in memory) and rejoin their collaboration
	// groups so group traffic reaches recovered queues again; held
	// steering locks are reasserted with a fresh lease, journaled like
	// any other grant so the reassertion is itself durable.
	for clientID, pb := range bindings {
		sess, ok := s.sessions.Peek(clientID)
		if !ok {
			continue
		}
		priv, err := auth.ParsePrivilege(pb.priv)
		if err != nil || priv == auth.None {
			continue
		}
		sess.RestoreBinding(pb.app, s.auth.MintCapability(sess.User, pb.app, priv))
		s.hub.Group(pb.app).Join(clientID, func(m *wire.Message) { sess.Buffer.Push(m) })
		s.bumpAppCounter(pb.app)
	}
	for app, owner := range holders {
		s.locks.Reassert(app, owner, 0)
		s.bumpAppCounter(app)
	}
	for _, app := range s.store.Apps() {
		s.bumpAppCounter(app)
	}

	d := time.Since(t0)
	storage.ObserveRecovery(d)
	ds.mu.Lock()
	ds.recovered = RecoveryStats{
		Clean: clean, SnapshotSeq: snapSeq, Replayed: replayed,
		Sessions: s.sessions.Len(), Locks: len(holders),
		DurationMS: float64(d) / float64(time.Millisecond),
	}
	ds.mu.Unlock()

	if !clean || replayed > 0 {
		// Make the recovered state durable immediately: the next crash
		// recovers from this snapshot instead of re-replaying the same
		// log, keeping recovery time bounded across repeated failures.
		if err := s.snapshotNow(); err != nil {
			s.cfg.Logf("server %s: post-recovery snapshot: %v", s.cfg.Name, err)
		}
	}
	if replayed > 0 || snapSeq > 0 {
		s.cfg.Logf("server %s: recovered %d sessions, %d locks from snapshot@%d + %d WAL records in %s (clean=%v)",
			s.cfg.Name, s.sessions.Len(), len(holders), snapSeq, replayed, d.Round(time.Millisecond), clean)
	}
	return nil
}

// bumpAppCounter keeps the app-id counter ahead of any recovered
// "name#N" id, so applications re-registering after the restart cannot
// collide with ids referenced by recovered state.
func (s *Server) bumpAppCounter(appID string) {
	rest, found := strings.CutPrefix(appID, s.cfg.Name+"#")
	if !found {
		return
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return
	}
	s.mu.Lock()
	if n > s.counter {
		s.counter = n
	}
	s.mu.Unlock()
}
