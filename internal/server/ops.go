package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"discover/internal/archive"
	"discover/internal/auth"
	"discover/internal/collab"
	"discover/internal/recorddb"
	"discover/internal/session"
	"discover/internal/telemetry"
	"discover/internal/wire"
)

// Operation errors surfaced to clients.
var (
	ErrNotConnected = errors.New("server: session not connected to an application")
	ErrDenied       = errors.New("server: privilege too low for this operation")
	ErrNeedLock     = errors.New("server: steering lock required")
	ErrUnknownApp   = errors.New("server: unknown application")
)

// opPrivilege maps each command to the minimum privilege it needs.
// Unknown operations require Steer, the safe default.
var opPrivilege = map[string]auth.Privilege{
	"status":      auth.Monitor,
	"get_param":   auth.Monitor,
	"list_params": auth.Monitor,
	"sensor":      auth.Interact,
	"checkpoint":  auth.Interact,
	"view":        auth.Interact,
	"set_param":   auth.Steer,
	"actuate":     auth.Steer,
	"pause":       auth.Steer,
	"resume":      auth.Steer,
	"restore":     auth.Steer,
}

// opMutating marks commands that drive the application and therefore
// require holding the steering lock.
var opMutating = map[string]bool{
	"set_param": true,
	"actuate":   true,
	"pause":     true,
	"resume":    true,
	"restore":   true,
}

func requiredPrivilege(op string) auth.Privilege {
	if p, ok := opPrivilege[op]; ok {
		return p
	}
	return auth.Steer
}

var cmdSeq atomic.Uint64

// edgeSpan closes the edge hop of a sampled request: everything from the
// trace's mint at the HTTP handler up to the moment the request leaves
// the server layer (into the substrate or the local app queue).
func (s *Server) edgeSpan(ctx context.Context, op string) {
	if tr := telemetry.TraceFrom(ctx); tr != nil {
		tr.AddSpan(telemetry.HopEdge, op, s.cfg.Name, "", tr.Begin(), time.Since(tr.Begin()))
	}
}

// ConnectApp performs level-two authorization for a session and joins it
// to the application's collaboration group. For remote applications the
// authorization happens at the host server through the substrate and a
// relay subscription is established.
func (s *Server) ConnectApp(ctx context.Context, sess *session.Session, appID string) (auth.Capability, error) {
	var cap auth.Capability
	if ServerOfApp(appID) == s.cfg.Name {
		if _, ok := s.Proxy(appID); !ok {
			return cap, ErrUnknownApp
		}
		var err error
		cap, err = s.auth.Authorize(sess.Token, appID)
		if err != nil {
			return cap, err
		}
	} else {
		fed := s.federation()
		if fed == nil {
			return cap, ErrUnknownApp
		}
		s.edgeSpan(ctx, "connect "+appID)
		privName, err := fed.RemotePrivilege(ctx, sess.User, appID)
		if err != nil {
			return cap, err
		}
		priv, err := auth.ParsePrivilege(privName)
		if err != nil || priv == auth.None {
			return cap, auth.ErrNoAccess
		}
		if err := fed.Subscribe(ctx, appID); err != nil {
			return cap, err
		}
		cap = s.auth.MintCapability(sess.User, appID, priv)
	}
	sess.Connect(appID, cap)
	g := s.hub.Group(appID)
	g.Join(sess.ClientID, func(m *wire.Message) { sess.Buffer.Push(m) })
	// Membership is replicated group state: append the join op and push
	// it toward the rest of the federation's replicas.
	s.disseminateMembership(ctx, appID, g, g.NoteJoin(sess.ClientID))
	return cap, nil
}

// disseminateMembership routes a membership op (join/leave/sub-switch)
// to peer-server replicas: at the host server straight to the relays, at
// a member server through the host. Membership ops are replica traffic,
// not client-visible messages, so they never enter local FIFOs.
func (s *Server) disseminateMembership(ctx context.Context, appID string, g *collab.Group, m *wire.Message) {
	if ServerOfApp(appID) == s.cfg.Name {
		g.RelayBroadcast(m, "")
		return
	}
	s.collabForward(ctx, appID, m)
}

// DisconnectApp leaves the application's collaboration group and releases
// any steering lock the client still holds. ctx bounds the best-effort
// remote lock release.
func (s *Server) DisconnectApp(ctx context.Context, sess *session.Session) {
	appID := sess.App()
	if appID == "" {
		return
	}
	g := s.hub.Group(appID)
	g.Leave(sess.ClientID)
	s.disseminateMembership(ctx, appID, g, g.NoteLeave(sess.ClientID))
	if ServerOfApp(appID) == s.cfg.Name {
		s.locks.ReleaseAllOwnedBy(sess.ClientID)
	} else if fed := s.federation(); fed != nil {
		fed.RemoteLock(ctx, appID, sess.ClientID, false) // best-effort release
	}
	sess.Disconnect()
}

// Logout removes the session entirely, along with its admission-control
// bucket state.
func (s *Server) Logout(ctx context.Context, sess *session.Session) {
	s.DisconnectApp(ctx, sess)
	s.sessions.Remove(sess.ClientID)
	s.gate.forgetSession(sess.ClientID)
}

// SubmitCommand validates and routes one client command. The response
// arrives asynchronously in the client's FIFO buffer. The returned
// message is the accepted command (carrying its sequence number). ctx
// bounds the remote forward and carries the telemetry trace, if any.
func (s *Server) SubmitCommand(ctx context.Context, sess *session.Session, op string, params []wire.Param) (*wire.Message, error) {
	appID := sess.App()
	if appID == "" {
		return nil, ErrNotConnected
	}
	cap := sess.Capability()
	if err := s.auth.VerifyCapability(cap); err != nil {
		return nil, err
	}
	if !cap.Priv.AtLeast(requiredPrivilege(op)) {
		return nil, ErrDenied
	}
	cmd := wire.NewCommand(appID, sess.ClientID, op, params...)
	cmd.Seq = cmdSeq.Add(1)
	cmd.Set("_user", sess.User)

	// The interaction log lives at the client's server.
	s.store.InteractionLog(appID).Append(sess.ClientID, cmd)

	s.edgeSpan(ctx, "command "+op)
	if ServerOfApp(appID) == s.cfg.Name {
		return cmd, s.EnqueueLocalCommand(appID, cmd)
	}
	fed := s.federation()
	if fed == nil {
		return nil, ErrUnknownApp
	}
	return cmd, fed.ForwardCommand(ctx, appID, cmd)
}

// EnqueueLocalCommand is extended with host-side enforcement: privilege
// (from the ACL the application registered) and the steering lock for
// mutating operations are checked here, at the application's host server,
// for local and relayed commands alike.
func (s *Server) enforceAtHost(appID string, cmd *wire.Message) error {
	user, _ := cmd.Get("_user")
	if !s.auth.Privilege(user, appID).AtLeast(requiredPrivilege(cmd.Op)) {
		return ErrDenied
	}
	if opMutating[cmd.Op] {
		holder, held := s.locks.Holder(appID)
		if !held || holder != cmd.Client {
			return ErrNeedLock
		}
	}
	return nil
}

// LockOp acquires or releases the steering lock for the session's
// application, relaying to the host server when the application is
// remote. Lock state lives only at the host server (§5.2.4).
func (s *Server) LockOp(ctx context.Context, sess *session.Session, acquire bool) (granted bool, holder string, err error) {
	appID := sess.App()
	if appID == "" {
		return false, "", ErrNotConnected
	}
	if !sess.Capability().Priv.AtLeast(auth.Steer) {
		return false, "", ErrDenied
	}
	if ServerOfApp(appID) == s.cfg.Name {
		return s.LockRequest(appID, sess.ClientID, acquire)
	}
	fed := s.federation()
	if fed == nil {
		return false, "", ErrUnknownApp
	}
	s.edgeSpan(ctx, "lock "+appID)
	return fed.RemoteLock(ctx, appID, sess.ClientID, acquire)
}

// collabForward sends a collaboration message originated by a local
// client toward the rest of a cross-server group. ctx bounds the remote
// forward and carries the telemetry trace, if any.
func (s *Server) collabForward(ctx context.Context, appID string, m *wire.Message) {
	if ServerOfApp(appID) == s.cfg.Name {
		return // local group's relays already received it
	}
	if fed := s.federation(); fed != nil {
		fed.ForwardCollab(ctx, appID, m)
	}
}

// collabGroup resolves the session's live collaboration group and checks
// the session may mutate shared state through it.
func (s *Server) collabGroup(sess *session.Session) (*collab.Group, string, error) {
	appID := sess.App()
	if appID == "" {
		return nil, "", ErrNotConnected
	}
	g, ok := s.hub.Lookup(appID)
	if !ok {
		return nil, "", ErrGroupNotFound
	}
	enabled, _, member := g.Member(sess.ClientID)
	if !member {
		return nil, "", ErrNotConnected
	}
	if !enabled {
		return nil, "", ErrCollabDisabled
	}
	return g, appID, nil
}

// Chat sends a chat line to the session's collaboration (sub-)group,
// across servers when the group spans them. The line becomes a
// replicated op; the forwarded message carries its identity so every
// replica merges it exactly once.
func (s *Server) Chat(ctx context.Context, sess *session.Session, text string) error {
	g, appID, err := s.collabGroup(sess)
	if err != nil {
		return err
	}
	m, _ := g.Chat(sess.ClientID, sess.User, text)
	s.edgeSpan(ctx, "chat "+appID)
	s.collabForward(ctx, appID, m)
	return nil
}

// Whiteboard adds a stroke as a replicated op, retained (bounded, with
// journal fallback) for latecomers and broadcast across the group.
func (s *Server) Whiteboard(ctx context.Context, sess *session.Session, stroke []byte) error {
	g, appID, err := s.collabGroup(sess)
	if err != nil {
		return err
	}
	m, _ := g.Whiteboard(sess.ClientID, stroke)
	s.edgeSpan(ctx, "whiteboard "+appID)
	s.collabForward(ctx, appID, m)
	return nil
}

// ShareView explicitly shares a view with the session's sub-group even
// when the session has collaboration disabled.
func (s *Server) ShareView(ctx context.Context, sess *session.Session, view []byte) error {
	appID := sess.App()
	if appID == "" {
		return ErrNotConnected
	}
	m := &wire.Message{Kind: wire.KindViewShare, App: appID, Client: sess.ClientID, Data: view}
	s.hub.Group(appID).ShareView(sess.ClientID, m)
	s.edgeSpan(ctx, "share "+appID)
	s.collabForward(ctx, appID, m)
	return nil
}

// SetCollaboration flips the session's collaboration mode.
func (s *Server) SetCollaboration(sess *session.Session, enabled bool) error {
	appID := sess.App()
	if appID == "" {
		return ErrNotConnected
	}
	if !s.hub.Group(appID).SetEnabled(sess.ClientID, enabled) {
		return ErrNotConnected
	}
	return nil
}

// JoinSubGroup moves the session into a named sub-group ("" = main) and
// replicates the switch so every domain's converged membership agrees.
func (s *Server) JoinSubGroup(ctx context.Context, sess *session.Session, sub string) error {
	appID := sess.App()
	if appID == "" {
		return ErrNotConnected
	}
	g := s.hub.Group(appID)
	if !g.JoinSub(sess.ClientID, sub) {
		return ErrNotConnected
	}
	s.disseminateMembership(ctx, appID, g, g.NoteSub(sess.ClientID, sub))
	return nil
}

// DeliverCollabFromPeer merges a collaboration message that arrived from
// a peer server into the replicated log and fans it out to this (host)
// server's group: local members plus every relay except the origin.
// Duplicates — a relay echo overlapping an anti-entropy sync — merge as
// no-ops and are not re-broadcast.
func (s *Server) DeliverCollabFromPeer(appID string, m *wire.Message, fromServer string) {
	g := s.hub.Group(appID)
	if !g.ApplyWire(m) {
		return
	}
	switch m.Kind {
	case wire.KindJoin, wire.KindLeave:
		// Membership ops replicate between servers only.
		g.RelayBroadcast(m, fromServer)
	default:
		g.BroadcastUpdate(m, "relay/"+fromServer)
	}
}

// Replay returns the session's application interaction log from a
// sequence number, supporting client replay and latecomer catch-up.
func (s *Server) Replay(sess *session.Session, fromSeq uint64) ([]archive.Entry, error) {
	appID := sess.App()
	if appID == "" {
		return nil, ErrNotConnected
	}
	return s.store.InteractionLog(appID).Since(fromSeq), nil
}

// QueryRecords lists records visible to the session's user.
func (s *Server) QueryRecords(sess *session.Session, table string, filter map[string]string) ([]recorddb.Record, error) {
	t, err := s.db.Lookup(table)
	if err != nil {
		return nil, err
	}
	return t.Filter(sess.User, filter), nil
}

// Poll drains the session's FIFO buffer (long-polling when waitMs > 0).
func (s *Server) Poll(sess *session.Session, max int, waitMs int) []*wire.Message {
	if waitMs > 0 {
		return sess.Buffer.DrainWait(max, time.Duration(waitMs)*time.Millisecond)
	}
	return sess.Buffer.Drain(max)
}
