package server

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"discover/internal/wire"
)

// These tests exercise the server's remote-facing surface directly (the
// paths the substrate normally drives), without standing up an ORB.

func TestLoginAsserted(t *testing.T) {
	d := deploy(t)
	if err := d.srv.LoginAsserted("alice"); err != nil {
		t.Errorf("asserted login for ACL user: %v", err)
	}
	if err := d.srv.LoginAsserted("mallory"); err == nil {
		t.Error("asserted login for unknown user succeeded")
	}
}

func TestRelaySubscriptionAndRemoteDelivery(t *testing.T) {
	d := deploy(t)
	appID := d.app.AppID()

	var mu sync.Mutex
	var relayed []*wire.Message
	deliver := func(m *wire.Message) {
		mu.Lock()
		relayed = append(relayed, m)
		mu.Unlock()
	}
	if err := d.srv.SubscribeRelay(appID, "caltech", deliver); err != nil {
		t.Fatal(err)
	}
	if err := d.srv.SubscribeRelay("nosuch#1", "caltech", deliver); err == nil {
		t.Error("relay subscription for unknown app succeeded")
	}

	// A phase produces one update; the relay receives exactly one copy.
	if _, err := d.app.RunPhase(); err != nil {
		t.Fatal(err)
	}
	waitRelayed := func(want int) {
		t.Helper()
		d.pump(t, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(relayed) >= want
		})
	}
	waitRelayed(1)
	mu.Lock()
	if relayed[0].Kind != wire.KindUpdate {
		t.Errorf("relayed kind = %v", relayed[0].Kind)
	}
	n := len(relayed)
	mu.Unlock()

	// A response for a remote requester goes to exactly its server relay.
	cmd := wire.NewCommand(appID, "caltech/client-9", "status")
	cmd.Set("_user", "alice")
	if err := d.srv.EnqueueLocalCommand(appID, cmd); err != nil {
		t.Fatal(err)
	}
	if _, err := d.app.RunPhase(); err != nil {
		t.Fatal(err)
	}
	waitRelayed(n + 2) // the phase's update + the relayed response
	mu.Lock()
	var gotResp bool
	for _, m := range relayed {
		if m.Kind == wire.KindResponse && m.Client == "caltech/client-9" {
			gotResp = true
		}
	}
	mu.Unlock()
	if !gotResp {
		t.Error("remote requester's response never reached its relay")
	}

	d.srv.UnsubscribeRelay(appID, "caltech")
	mu.Lock()
	n = len(relayed)
	mu.Unlock()
	d.app.RunPhase()
	mu.Lock()
	if len(relayed) != n {
		t.Error("relay received traffic after unsubscribe")
	}
	mu.Unlock()
}

func TestDeliverRemoteMessageFansOutLocally(t *testing.T) {
	d := deploy(t)
	alice := d.login(t, "alice")
	// Connect alice to a *remote* app id by hand: join the local group.
	remoteID := "caltech#7"
	d.srv.Hub().Group(remoteID).Join(alice.ClientID, func(m *wire.Message) { alice.Buffer.Push(m) })

	// An update relayed from the host is broadcast to local members.
	d.srv.DeliverRemoteMessage(remoteID, wire.NewUpdate(remoteID, 3), "caltech")
	msgs := alice.Buffer.Drain(0)
	if len(msgs) != 1 || msgs[0].Kind != wire.KindUpdate {
		t.Fatalf("remote update fan-out = %v", msgs)
	}

	// A response addressed to the local client is archived and delivered.
	resp := wire.NewResponse(wire.NewCommand(remoteID, alice.ClientID, "status"), "ok")
	d.srv.DeliverRemoteMessage(remoteID, resp, "caltech")
	msgs = alice.Buffer.Drain(0)
	if len(msgs) != 1 || msgs[0].Kind != wire.KindResponse {
		t.Fatalf("remote response fan-out = %v", msgs)
	}
	if d.srv.Archive().InteractionLog(remoteID).Len() == 0 {
		t.Error("remote response not archived at the client's server")
	}

	// A whiteboard stroke from the peer is recorded for latecomers.
	// Adopting the identity-less stroke stamps this server's op identity
	// onto the message, so redelivering the stamped copy is a dedup, not
	// a second stroke.
	stroke := &wire.Message{Kind: wire.KindWhiteboard, App: remoteID, Client: "caltech/client-1", Data: []byte{1}}
	d.srv.DeliverRemoteMessage(remoteID, stroke, "caltech")
	if d.srv.Hub().Group(remoteID).WhiteboardLen() != 1 {
		t.Error("relayed stroke not recorded")
	}
	d.srv.DeliverRemoteMessage(remoteID, stroke, "caltech")
	if d.srv.Hub().Group(remoteID).WhiteboardLen() != 1 {
		t.Error("redelivered stamped stroke was double-counted")
	}

	// DeliverCollabFromPeer (the host side of forwarded collab) reaches
	// local members and records strokes too.
	stroke2 := &wire.Message{Kind: wire.KindWhiteboard, App: remoteID, Client: "utexas/client-9", Data: []byte{2}}
	d.srv.DeliverCollabFromPeer(remoteID, stroke2, "utexas")
	if d.srv.Hub().Group(remoteID).WhiteboardLen() != 2 {
		t.Error("DeliverCollabFromPeer did not record the stroke")
	}
}

func TestHTTPShareAndAttach(t *testing.T) {
	d := deploy(t)
	ts := httptest.NewServer(d.srv.HTTPHandler())
	t.Cleanup(ts.Close)
	c := &httpClient{t: t, base: ts.URL}
	a, _ := c.login("alice", "pw")
	b, _ := c.login("bob", "pw")
	appID := d.app.AppID()
	c.post("/api/connect", ConnectRequest{ClientID: a.ClientID, App: appID}, nil)
	c.post("/api/connect", ConnectRequest{ClientID: b.ClientID, App: appID}, nil)

	// Explicit view share reaches bob.
	if code := c.post("/api/share", ShareRequest{ClientID: a.ClientID, View: []byte("png")}, nil); code != 200 {
		t.Fatalf("share -> %d", code)
	}
	var pr PollResponse
	c.get("/api/poll?client="+b.ClientID, &pr)
	var shared bool
	for _, m := range pr.Messages {
		if m.Kind == wire.KindViewShare && string(m.Data) == "png" {
			shared = true
		}
	}
	if !shared {
		t.Error("shared view never delivered")
	}

	// Attach over HTTP with the login token.
	var ar AttachResponse
	if code := c.post("/api/attach", AttachRequest{ClientID: a.ClientID, Token: a.Token}, &ar); code != 200 {
		t.Fatalf("attach -> %d", code)
	}
	if ar.User != "alice" || ar.App != appID || ar.Privilege != "steer" {
		t.Errorf("attach = %+v", ar)
	}
	if code := c.post("/api/attach", AttachRequest{ClientID: a.ClientID, Token: "junk"}, nil); code != http.StatusUnauthorized {
		t.Errorf("attach with junk token -> %d", code)
	}
	if code := c.post("/api/attach", AttachRequest{ClientID: a.ClientID, Token: b.Token}, nil); code != http.StatusUnauthorized {
		t.Errorf("cross-user attach -> %d", code)
	}
	if code := c.post("/api/attach", AttachRequest{ClientID: "ghost", Token: a.Token}, nil); code != http.StatusUnauthorized {
		t.Errorf("attach to unknown session -> %d", code)
	}
}
