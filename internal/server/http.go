package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"discover/internal/archive"
	"discover/internal/auth"
	"discover/internal/collab"
	"discover/internal/session"
	"discover/internal/telemetry"
	"discover/internal/wire"
)

// The HTTP API is the web-portal surface of the paper's servlets. It is
// deliberately request/response (poll-and-pull): clients poll
// /api/v1/poll to drain their server-side FIFO buffer, exactly the
// commodity-HTTP trade-off §6.2 discusses. Bodies are JSON — the modern
// stand-in for the prototype's serialized Java objects over HTTP
// GET/POST.
//
// The surface is versioned: the contract lives under /api/v1 (API.md
// documents every route), and the original unversioned /api paths remain
// as exact aliases that answer with a Deprecation header pointing at
// their successor. Session-facing routes pass through edge admission
// (admission.go) before their handler runs.

// API request/response bodies.
type (
	// LoginRequest authenticates a user at their home server.
	LoginRequest struct {
		User   string `json:"user"`
		Secret string `json:"secret"`
	}
	// LoginResponse returns the session identity.
	LoginResponse struct {
		ClientID string `json:"clientId"`
		Token    string `json:"token"`
		Server   string `json:"server"`
	}
	// AppsResponse lists visible applications, local and remote.
	AppsResponse struct {
		Apps []AppInfo `json:"apps"`
	}
	// ConnectRequest performs level-two authorization.
	ConnectRequest struct {
		ClientID string `json:"clientId"`
		App      string `json:"app"`
	}
	// ConnectResponse reports the granted privilege.
	ConnectResponse struct {
		App       string `json:"app"`
		Privilege string `json:"privilege"`
	}
	// CommandRequest submits a steering/view command.
	CommandRequest struct {
		ClientID string            `json:"clientId"`
		Op       string            `json:"op"`
		Params   map[string]string `json:"params,omitempty"`
	}
	// CommandResponse acknowledges an accepted command. TraceID is set
	// when the request was sampled for tracing; fetch the hop breakdown
	// from GET /api/trace/{traceId} once the command has completed.
	CommandResponse struct {
		Seq     uint64 `json:"seq"`
		TraceID string `json:"traceId,omitempty"`
	}
	// PollResponse drains the client's FIFO buffer.
	PollResponse struct {
		Messages []*wire.Message `json:"messages"`
	}
	// LockRequestBody acquires or releases the steering lock.
	LockRequestBody struct {
		ClientID string `json:"clientId"`
		Acquire  bool   `json:"acquire"`
	}
	// LockResponse reports the outcome and current holder.
	LockResponse struct {
		Granted bool   `json:"granted"`
		Holder  string `json:"holder,omitempty"`
	}
	// ChatRequest sends a chat line to the collaboration group.
	ChatRequest struct {
		ClientID string `json:"clientId"`
		Text     string `json:"text"`
	}
	// WhiteboardRequest adds a whiteboard stroke.
	WhiteboardRequest struct {
		ClientID string `json:"clientId"`
		Stroke   []byte `json:"stroke"`
	}
	// ShareRequest explicitly shares a view.
	ShareRequest struct {
		ClientID string `json:"clientId"`
		View     []byte `json:"view"`
	}
	// CollabRequest changes collaboration mode or sub-group.
	CollabRequest struct {
		ClientID string  `json:"clientId"`
		Enabled  *bool   `json:"enabled,omitempty"`
		Sub      *string `json:"sub,omitempty"`
	}
	// CollabInfoResponse is the typed collaboration resource: the
	// session's own mode, the local membership view, and the converged
	// CRDT view of the whole cross-domain group with its replication
	// watermarks.
	CollabInfoResponse struct {
		App     string               `json:"app"`
		Enabled bool                 `json:"enabled"`
		Sub     string               `json:"sub,omitempty"`
		Members []string             `json:"members"`
		Relays  []string             `json:"relays,omitempty"`
		Group   []collab.MemberState `json:"group"`
		Log     CollabLogStats       `json:"log"`
	}
	// WhiteboardResponse replays whiteboard strokes past a watermark.
	// Watermark is the log head: pass it back as ?from= to resume.
	// Missed counts evicted strokes that could not be spliced back from
	// the WAL (memory-only domains past the retention cap).
	WhiteboardResponse struct {
		Strokes   []collab.StrokeEntry `json:"strokes"`
		Watermark uint64               `json:"watermark"`
		Missed    int                  `json:"missed,omitempty"`
	}
	// ReplayResponse returns archived interaction entries.
	ReplayResponse struct {
		Entries []archive.Entry `json:"entries"`
	}
	// RecordsResponse returns visible database records.
	RecordsResponse struct {
		Records []RecordView `json:"records"`
	}
	// RecordView is the JSON shape of one record.
	RecordView struct {
		ID     string            `json:"id"`
		Owner  string            `json:"owner"`
		Fields map[string]string `json:"fields"`
	}
	// UsersResponse lists logged-in users.
	UsersResponse struct {
		Users []string `json:"users"`
	}
	// InfoResponse describes the server.
	InfoResponse struct {
		Name     string `json:"name"`
		Apps     int    `json:"apps"`
		Sessions int    `json:"sessions"`
	}
	// AttachRequest re-attaches a detached portal to its session.
	AttachRequest struct {
		ClientID string `json:"clientId"`
		Token    string `json:"token"`
	}
	// AttachResponse reports the resumed session's state.
	AttachResponse struct {
		User      string `json:"user"`
		App       string `json:"app,omitempty"`
		Privilege string `json:"privilege,omitempty"`
		Buffered  int    `json:"buffered"`
	}
	// ErrorBody is the inside of the uniform error envelope.
	ErrorBody struct {
		Code         ErrCode `json:"code"`
		Message      string  `json:"message"`
		RetryAfterMS int64   `json:"retry_after_ms,omitempty"`
	}
	// ErrorResponse is the uniform error envelope every non-2xx API
	// response carries: {"error":{"code","message","retry_after_ms"}}.
	ErrorResponse struct {
		Error ErrorBody `json:"error"`
	}
)

// APIVersion is the current portal API version prefix.
const APIVersion = "/api/v1"

// apiRoute is one row of the portal route table. Path is relative to the
// version prefix; Open routes (operator/observability surface) bypass
// edge admission so an overloaded or draining server stays inspectable;
// Stream routes hold a connection open and so clear the long-lived
// connection cap inside their handler instead of the per-request
// in-flight limiter.
type apiRoute struct {
	Method string
	Path   string
	Open   bool
	Stream bool

	handler http.HandlerFunc
}

// Routes returns the portal route table — the single source of truth for
// HTTPHandler, the contract tests, and scripts/apidrift (which
// cross-checks it against API.md).
func (s *Server) Routes() []apiRoute {
	return []apiRoute{
		{Method: "POST", Path: "/login", handler: s.handleLogin},
		{Method: "POST", Path: "/attach", handler: s.handleAttach},
		{Method: "POST", Path: "/logout", handler: s.handleLogout},
		{Method: "GET", Path: "/apps", handler: s.handleApps},
		{Method: "POST", Path: "/connect", handler: s.handleConnect},
		{Method: "POST", Path: "/disconnect", handler: s.handleDisconnect},
		{Method: "POST", Path: "/command", handler: s.handleCommand},
		{Method: "GET", Path: "/poll", handler: s.handlePoll},
		{Method: "GET", Path: "/session/{id}/events", handler: s.handleSessionEvents},
		{Method: "GET", Path: "/session/{id}/stream", Stream: true, handler: s.handleSessionStream},
		{Method: "POST", Path: "/lock", handler: s.handleLock},
		{Method: "POST", Path: "/chat", handler: s.handleChat},
		{Method: "POST", Path: "/whiteboard", handler: s.handleWhiteboard},
		{Method: "POST", Path: "/share", handler: s.handleShare},
		{Method: "POST", Path: "/collab", handler: s.handleCollab},
		{Method: "GET", Path: "/session/{id}/collab", handler: s.handleSessionCollab},
		{Method: "GET", Path: "/session/{id}/whiteboard", handler: s.handleSessionWhiteboard},
		{Method: "GET", Path: "/replay", handler: s.handleReplay},
		{Method: "GET", Path: "/records", handler: s.handleRecords},
		{Method: "GET", Path: "/users", handler: s.handleUsers},
		{Method: "GET", Path: "/info", Open: true, handler: s.handleInfo},
		{Method: "GET", Path: "/stats", Open: true, handler: s.handleStats},
		{Method: "GET", Path: "/trace", Open: true, handler: s.handleTraces},
		{Method: "GET", Path: "/trace/{id}", Open: true, handler: s.handleTrace},
	}
}

// withDeprecation marks a legacy-alias response before delegating.
func withDeprecation(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// HTTPHandler returns the server's web API: every route mounted under
// /api/v1, a deprecated alias per route under the legacy /api prefix,
// and the unversioned operator endpoints (/metrics, /debug/pprof).
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	retryMS := s.gate.retryAfter.Milliseconds()
	for _, rt := range s.Routes() {
		h := rt.handler
		if !rt.Open && !rt.Stream {
			h = s.gate.admit(h, retryMS)
		}
		mux.HandleFunc(rt.Method+" "+APIVersion+rt.Path, h)
		mux.HandleFunc(rt.Method+" /api"+rt.Path, withDeprecation(APIVersion+rt.Path, h))
	}
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// traceCtx makes the edge sampling decision for one portal request: one
// atomic increment when sampling is off or the request loses the draw; a
// trace minted into the request context when it wins. Callers must Finish
// the returned trace (nil-safe) once the request completes.
func (s *Server) traceCtx(r *http.Request, op string) (context.Context, *telemetry.ActiveTrace) {
	tr := telemetry.Default().Sample(op)
	if tr == nil {
		return r.Context(), nil
	}
	return telemetry.WithTrace(r.Context(), tr), tr
}

// handleMetrics exports every registered latency histogram and counter in
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.DefaultRegistry().WritePrometheus(w)
}

// handleTrace returns one sampled trace with its per-hop span breakdown.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := telemetry.ParseTraceID(r.PathValue("id"))
	if err != nil {
		writeErrCode(w, CodeBadRequest, err.Error(), 0)
		return
	}
	rec, ok := telemetry.Default().Get(id)
	if !ok {
		writeErrCode(w, CodeNotFound, "trace not found (unsampled, unfinished, or evicted)", 0)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleTraces lists recently finished traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	max, _ := strconv.Atoi(r.URL.Query().Get("max"))
	recs := telemetry.Default().Recent(max)
	if recs == nil {
		recs = []telemetry.TraceRecord{}
	}
	writeJSON(w, http.StatusOK, recs)
}

// StatsResponse is the operational snapshot of one server.
type StatsResponse struct {
	Name     string         `json:"name"`
	Apps     []AppStats     `json:"apps"`
	Sessions []SessionStats `json:"sessions"`
	Relays   []RelayStats   `json:"relays,omitempty"`
	Wire     *WireStats     `json:"wire,omitempty"`
	// PeerHealth reports the substrate's failure-detector view of each
	// federated peer, when a HealthProvider federation is attached.
	PeerHealth []PeerHealthStats `json:"peerHealth,omitempty"`
	// Directory reports the federation directory cache and scatter-gather
	// fan-out counters, when a DirectoryProvider federation is attached.
	Directory *DirectoryStats `json:"directory,omitempty"`
	// Edge reports the portal's admission-control state: session shards,
	// in-flight requests vs the cap, shed counts by reason, and draining.
	Edge *EdgeStats `json:"edge,omitempty"`
	// Storage reports the durable backend's WAL/snapshot counters and the
	// last startup recovery, when the domain persists its state.
	Storage *StorageStats `json:"storage,omitempty"`
	// Gossip reports the epidemic federation directory — membership,
	// replica size and anti-entropy counters — when a GossipProvider
	// federation has gossip enabled.
	Gossip *GossipStats `json:"gossip,omitempty"`
}

// DirectoryStats aggregates the substrate's directory-cache and
// scatter-gather counters. Hits and StaleServes are listings answered
// with zero ORB invocations; Coalesced counts misses deduplicated into
// another caller's in-flight fetch; UnavailableServes counts degraded
// listings served while a peer's breaker was open.
type DirectoryStats struct {
	Entries             int    `json:"entries"`
	Hits                uint64 `json:"hits"`
	StaleServes         uint64 `json:"staleServes"`
	Misses              uint64 `json:"misses"`
	Coalesced           uint64 `json:"coalesced"`
	UnavailableServes   uint64 `json:"unavailableServes"`
	EventInvalidations  uint64 `json:"eventInvalidations"`
	HealthInvalidations uint64 `json:"healthInvalidations"`
	PeerInvalidations   uint64 `json:"peerInvalidations"`
	FanoutWorkers       int    `json:"fanoutWorkers"`
	FanoutRounds        uint64 `json:"fanoutRounds"`
	FanoutCalls         uint64 `json:"fanoutCalls"`
	// GossipServed vs FanoutServed splits remote listings by which engine
	// answered: the converged gossip replica (zero ORB invocations) or the
	// scatter-gather cold-start/fallback path.
	GossipServed uint64 `json:"gossipServed"`
	FanoutServed uint64 `json:"fanoutServed"`
}

// DirectoryProvider is an optional Federation extension: a substrate that
// implements it gets its directory cache and fan-out counters surfaced in
// /api/stats.
type DirectoryProvider interface {
	DirectoryStats() DirectoryStats
}

// PeerHealthStats is the failure detector's view of one peer server.
type PeerHealthStats struct {
	Peer                string `json:"peer"`
	State               string `json:"state"` // healthy | suspect | down | probing
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	LastError           string `json:"lastError,omitempty"`
	BreakerOpens        uint64 `json:"breakerOpens"`
	BreakerCloses       uint64 `json:"breakerCloses"`
	HeartbeatRTTMicros  int64  `json:"heartbeatRttMicros,omitempty"`
}

// HealthProvider is an optional Federation extension: a substrate that
// implements it gets per-peer failure-detector state in /api/stats.
type HealthProvider interface {
	PeerHealth() []PeerHealthStats
}

// GossipStats is the epidemic directory's operational snapshot: SWIM-ish
// membership (alive/suspect/dead with this node's incarnation), replica
// size (origins, live records, pending tombstones), and the anti-entropy
// counters that show the perf story — RecordsSent staying flat while the
// federation grows means steady-state rounds cost O(changes), not
// O(directory).
type GossipStats struct {
	Self            string `json:"self"`
	Ready           bool   `json:"ready"`
	Incarnation     uint64 `json:"incarnation"`
	Members         int    `json:"members"`
	Alive           int    `json:"alive"`
	Suspect         int    `json:"suspect"`
	Dead            int    `json:"dead"`
	Origins         int    `json:"origins"`
	Records         int    `json:"records"`
	Tombstones      int    `json:"tombstones"`
	Rounds          uint64 `json:"rounds"`
	ExchangesOK     uint64 `json:"exchangesOk"`
	ExchangesFailed uint64 `json:"exchangesFailed"`
	Syncs           uint64 `json:"syncs"`
	RecordsSent     uint64 `json:"recordsSent"`
	RecordsApplied  uint64 `json:"recordsApplied"`
	RumorsSent      uint64 `json:"rumorsSent"`
	TombstonesGCed  uint64 `json:"tombstonesGced"`
	Refutations     uint64 `json:"refutations"`
}

// GossipProvider is an optional Federation extension: a substrate that
// implements it gets the epidemic directory's membership and anti-entropy
// counters surfaced in /api/stats. ok is false when gossip is disabled.
type GossipProvider interface {
	GossipStats() (GossipStats, bool)
}

// RelayStats describes the push relay to one subscribed peer server:
// queue depth, messages shed on overflow (the relay analogue of client
// FIFO drops), and how many ORB invocations the batching paid for them.
type RelayStats struct {
	Peer        string `json:"peer"`
	Queued      int    `json:"queued"`
	Delivered   uint64 `json:"delivered"`
	Dropped     uint64 `json:"dropped"`
	Batches     uint64 `json:"batches"`
	Invocations uint64 `json:"invocations"`
	Failures    uint64 `json:"failures"`
}

// WireStats aggregates the substrate ORB's wire-level counters. Writes
// below Invocations+Oneways means frame coalescing is saving syscalls;
// the v2 block shows protocol-v2 adoption (negotiated connections,
// per-version bytes, descriptor-cache effectiveness, compressed frames).
type WireStats struct {
	Invocations uint64 `json:"invocations"`
	Oneways     uint64 `json:"oneways"`
	Writes      uint64 `json:"writes"`
	BytesOut    uint64 `json:"bytesOut"`
	Replies     uint64 `json:"replies"`
	V2Conns     uint64 `json:"v2Conns"`
	BytesV1     uint64 `json:"bytesV1"`
	BytesV2     uint64 `json:"bytesV2"`
	InternDefs  uint64 `json:"internDefs"`
	InternHits  uint64 `json:"internHits"`
	Compressed  uint64 `json:"compressed"`
}

// StatsProvider is an optional Federation extension: a substrate that
// implements it gets its relay and wire counters surfaced in /api/stats.
type StatsProvider interface {
	RelayStats() []RelayStats
	WireStats() WireStats
}

// AppStats describes one local application's server-side state.
type AppStats struct {
	ID         string   `json:"id"`
	Name       string   `json:"name"`
	Kind       string   `json:"kind"`
	Buffered   int      `json:"bufferedCommands"`
	LockHolder string   `json:"lockHolder,omitempty"`
	Members    []string `json:"members"`
	Relays     []string `json:"relays"`
	LogLen     int      `json:"applicationLogLen"`
	// Collab summarizes the group's replicated CRDT op log.
	Collab *CollabLogStats `json:"collab,omitempty"`
}

// CollabLogStats is the JSON shape of one group's replicated op log:
// the order-independent state hash (equal across domains means the
// replicas converged), op/stroke/chat counts split by in-memory
// retention, and per-origin (seen, synced) watermarks.
type CollabLogStats struct {
	Origin     string                         `json:"origin"`
	Ops        int                            `json:"ops"`
	Retained   int                            `json:"retained"`
	Evicted    int                            `json:"evicted"`
	Strokes    int                            `json:"strokes"`
	Chats      int                            `json:"chats"`
	ApplyHead  uint64                         `json:"applyHead"`
	Hash       string                         `json:"hash"`
	Watermarks map[string]collab.LogWatermark `json:"watermarks,omitempty"`
}

// collabLogStats renders a log summary for the stats and collab APIs.
func collabLogStats(info collab.LogInfo) CollabLogStats {
	return CollabLogStats{
		Origin: info.Origin, Ops: info.Ops, Retained: info.Retained,
		Evicted: info.Evicted, Strokes: info.Strokes, Chats: info.Chats,
		ApplyHead: info.ApplyHead, Hash: fmt.Sprintf("%016x", info.Hash),
		Watermarks: info.Watermarks,
	}
}

// SessionStats describes one client session's delivery buffer.
type SessionStats struct {
	ClientID  string `json:"clientId"`
	User      string `json:"user"`
	App       string `json:"app,omitempty"`
	Buffered  int    `json:"buffered"`
	Dropped   uint64 `json:"dropped"`
	HighWater int    `json:"highWater"`
}

// handleStats reports buffers, locks, groups and logs — the operational
// visibility an administrator of the middle tier needs.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Name: s.cfg.Name}
	for _, id := range s.LocalAppIDs() {
		p, ok := s.Proxy(id)
		if !ok {
			continue
		}
		g := s.hub.Group(id)
		as := AppStats{
			ID:       id,
			Name:     p.Registration().Name,
			Kind:     p.Registration().Kind,
			Buffered: p.BufferedCommands(),
			Members:  g.Members(),
			Relays:   g.Relays(),
			LogLen:   s.store.ApplicationLog(id).Len(),
		}
		if holder, held := s.locks.Holder(id); held {
			as.LockHolder = holder
		}
		cls := collabLogStats(g.LogInfo())
		as.Collab = &cls
		resp.Apps = append(resp.Apps, as)
	}
	for _, sess := range s.sessions.List() {
		dropped, hw := sess.Buffer.Stats()
		resp.Sessions = append(resp.Sessions, SessionStats{
			ClientID:  sess.ClientID,
			User:      sess.User,
			App:       sess.App(),
			Buffered:  sess.Buffer.Len(),
			Dropped:   dropped,
			HighWater: hw,
		})
	}
	if sp, ok := s.federation().(StatsProvider); ok {
		resp.Relays = sp.RelayStats()
		ws := sp.WireStats()
		resp.Wire = &ws
	}
	if hp, ok := s.federation().(HealthProvider); ok {
		resp.PeerHealth = hp.PeerHealth()
	}
	if dp, ok := s.federation().(DirectoryProvider); ok {
		ds := dp.DirectoryStats()
		resp.Directory = &ds
	}
	if gp, ok := s.federation().(GossipProvider); ok {
		if gs, on := gp.GossipStats(); on {
			resp.Gossip = &gs
		}
	}
	es := s.EdgeStats()
	resp.Edge = &es
	if ss, ok := s.StorageStats(); ok {
		resp.Storage = &ss
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErrCode writes the uniform error envelope for an explicit code.
func writeErrCode(w http.ResponseWriter, code ErrCode, msg string, retryAfterMS int64) {
	writeJSON(w, code.httpStatus(), ErrorResponse{Error: ErrorBody{
		Code: code, Message: msg, RetryAfterMS: retryAfterMS,
	}})
}

// writeErr classifies err into the error-code registry and writes the
// envelope. Errors carrying their own code (Coder, e.g. the substrate's
// ErrPeerDown) win; rate/overload codes get the retry hint.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	code := codeOf(err)
	var retryMS int64
	switch code {
	case CodeRateLimited, CodeOverloaded, CodeShuttingDown, CodePeerSuspect:
		retryMS = s.gate.retryAfter.Milliseconds()
	}
	writeErrCode(w, code, err.Error(), retryMS)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeErrCode(w, CodeBadRequest, "bad request body: "+err.Error(), 0)
		return false
	}
	return true
}

// lookupSession resolves and validates the client's session, applying
// the per-session admission bucket.
func (s *Server) lookupSession(w http.ResponseWriter, clientID string) (*session.Session, bool) {
	sess, ok := s.sessions.Get(clientID)
	if !ok {
		writeErrCode(w, CodeSessionNotFound, "unknown client id", 0)
		return nil, false
	}
	if !s.gate.allowSession(clientID) {
		s.gate.shed(CodeRateLimited)
		writeErrCode(w, CodeRateLimited, "session request rate exceeded",
			s.gate.retryAfter.Milliseconds())
		return nil, false
	}
	if err := s.auth.VerifyToken(sess.Token); err != nil {
		writeErrCode(w, CodeUnauthorized, err.Error(), 0)
		return nil, false
	}
	return sess, true
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req LoginRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !s.gate.allowLogin(req.User) {
		s.gate.shed(CodeRateLimited)
		writeErrCode(w, CodeRateLimited, "login rate exceeded for user",
			s.gate.retryAfter.Milliseconds())
		return
	}
	sess, err := s.Login(r.Context(), req.User, req.Secret)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, LoginResponse{
		ClientID: sess.ClientID,
		Token:    sess.Token.Encode(),
		Server:   s.cfg.Name,
	})
}

// handleAttach resumes a detached portal: the paper's clients are
// "detachable" — the session, its FIFO buffer, application binding and
// capability live at the server, so a portal can disconnect and re-attach
// (from another browser, even) with its client-id and token.
func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	var req AttachRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.sessions.Get(req.ClientID)
	if !ok {
		writeErrCode(w, CodeSessionNotFound, "unknown client id", 0)
		return
	}
	tok, err := auth.ParseToken(req.Token)
	if err != nil {
		writeErrCode(w, CodeUnauthorized, err.Error(), 0)
		return
	}
	if err := s.auth.VerifyToken(tok); err != nil || tok.User != sess.User {
		writeErrCode(w, CodeUnauthorized, "token does not match session", 0)
		return
	}
	resp := AttachResponse{User: sess.User, App: sess.App(), Buffered: sess.Buffer.Len()}
	if resp.App != "" {
		resp.Privilege = sess.Capability().Priv.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLogout(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ClientID string `json:"clientId"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if sess, ok := s.sessions.Peek(req.ClientID); ok {
		s.Logout(r.Context(), sess)
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r.URL.Query().Get("client"))
	if !ok {
		return
	}
	ctx, tr := s.traceCtx(r, "apps")
	apps := s.Apps(ctx, sess.User)
	tr.Finish()
	if apps == nil {
		apps = []AppInfo{}
	}
	writeJSON(w, http.StatusOK, AppsResponse{Apps: apps})
}

func (s *Server) handleConnect(w http.ResponseWriter, r *http.Request) {
	var req ConnectRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.lookupSession(w, req.ClientID)
	if !ok {
		return
	}
	ctx, tr := s.traceCtx(r, "connect "+req.App)
	cap, err := s.ConnectApp(ctx, sess, req.App)
	tr.Finish()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ConnectResponse{App: req.App, Privilege: cap.Priv.String()})
}

func (s *Server) handleDisconnect(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ClientID string `json:"clientId"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.lookupSession(w, req.ClientID)
	if !ok {
		return
	}
	s.DisconnectApp(r.Context(), sess)
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleCommand(w http.ResponseWriter, r *http.Request) {
	var req CommandRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.lookupSession(w, req.ClientID)
	if !ok {
		return
	}
	params := make([]wire.Param, 0, len(req.Params))
	for k, v := range req.Params {
		params = append(params, wire.Param{Key: k, Value: v})
	}
	ctx, tr := s.traceCtx(r, "command "+req.Op)
	cmd, err := s.SubmitCommand(ctx, sess, req.Op, params)
	tr.Finish()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	resp := CommandResponse{Seq: cmd.Seq}
	if tr != nil {
		resp.TraceID = tr.ID().String()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sess, ok := s.lookupSession(w, q.Get("client"))
	if !ok {
		return
	}
	max, _ := strconv.Atoi(q.Get("max"))
	waitMs, _ := strconv.Atoi(q.Get("waitms"))
	if waitMs > 30000 {
		waitMs = 30000
	}
	msgs := s.Poll(sess, max, waitMs)
	if msgs == nil {
		msgs = []*wire.Message{}
	}
	writeJSON(w, http.StatusOK, PollResponse{Messages: msgs})
}

func (s *Server) handleLock(w http.ResponseWriter, r *http.Request) {
	var req LockRequestBody
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.lookupSession(w, req.ClientID)
	if !ok {
		return
	}
	ctx, tr := s.traceCtx(r, "lock")
	granted, holder, err := s.LockOp(ctx, sess, req.Acquire)
	tr.Finish()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, LockResponse{Granted: granted, Holder: holder})
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	var req ChatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.lookupSession(w, req.ClientID)
	if !ok {
		return
	}
	ctx, tr := s.traceCtx(r, "chat")
	err := s.Chat(ctx, sess, req.Text)
	tr.Finish()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleWhiteboard(w http.ResponseWriter, r *http.Request) {
	var req WhiteboardRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.lookupSession(w, req.ClientID)
	if !ok {
		return
	}
	ctx, tr := s.traceCtx(r, "whiteboard")
	err := s.Whiteboard(ctx, sess, req.Stroke)
	tr.Finish()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleShare(w http.ResponseWriter, r *http.Request) {
	var req ShareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.lookupSession(w, req.ClientID)
	if !ok {
		return
	}
	ctx, tr := s.traceCtx(r, "share")
	err := s.ShareView(ctx, sess, req.View)
	tr.Finish()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleCollab(w http.ResponseWriter, r *http.Request) {
	var req CollabRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.lookupSession(w, req.ClientID)
	if !ok {
		return
	}
	if req.Enabled != nil {
		if err := s.SetCollaboration(sess, *req.Enabled); err != nil {
			s.writeErr(w, err)
			return
		}
	}
	if req.Sub != nil {
		if err := s.JoinSubGroup(r.Context(), sess, *req.Sub); err != nil {
			s.writeErr(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleSessionCollab serves the typed collaboration resource. A session
// that switched collaboration off can still read it (the resource is how
// a portal decides whether to switch back on); only a session with no
// live group gets an error.
func (s *Server) handleSessionCollab(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	appID := sess.App()
	if appID == "" {
		s.writeErr(w, ErrNotConnected)
		return
	}
	g, found := s.hub.Lookup(appID)
	if !found {
		s.writeErr(w, ErrGroupNotFound)
		return
	}
	enabled, sub, _ := g.Member(sess.ClientID)
	resp := CollabInfoResponse{
		App: appID, Enabled: enabled, Sub: sub,
		Members: g.Members(), Relays: g.Relays(),
		Group: g.ConvergedMembers(),
		Log:   collabLogStats(g.LogInfo()),
	}
	if resp.Members == nil {
		resp.Members = []string{}
	}
	if resp.Group == nil {
		resp.Group = []collab.MemberState{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionWhiteboard replays whiteboard strokes with ApplySeq past
// the ?from= watermark (0 = everything), in this domain's apply order.
// The returned watermark resumes the next call, exactly like SSE event
// ids resume a stream.
func (s *Server) handleSessionWhiteboard(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	appID := sess.App()
	if appID == "" {
		s.writeErr(w, ErrNotConnected)
		return
	}
	g, found := s.hub.Lookup(appID)
	if !found {
		s.writeErr(w, ErrGroupNotFound)
		return
	}
	var from uint64
	if raw := r.URL.Query().Get("from"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.writeErr(w, ErrBadWatermark)
			return
		}
		from = v
	}
	if from > g.ApplyHead() {
		s.writeErr(w, ErrBadWatermark)
		return
	}
	strokes, last, missed := g.StrokesSince(from)
	if strokes == nil {
		strokes = []collab.StrokeEntry{}
	}
	writeJSON(w, http.StatusOK, WhiteboardResponse{Strokes: strokes, Watermark: last, Missed: missed})
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sess, ok := s.lookupSession(w, q.Get("client"))
	if !ok {
		return
	}
	from, _ := strconv.ParseUint(q.Get("from"), 10, 64)
	entries, err := s.Replay(sess, from)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if entries == nil {
		entries = []archive.Entry{}
	}
	writeJSON(w, http.StatusOK, ReplayResponse{Entries: entries})
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sess, ok := s.lookupSession(w, q.Get("client"))
	if !ok {
		return
	}
	table := q.Get("table")
	filter := make(map[string]string)
	for key, vals := range q {
		if strings.HasPrefix(key, "f.") && len(vals) > 0 {
			filter[strings.TrimPrefix(key, "f.")] = vals[0]
		}
	}
	records, err := s.QueryRecords(sess, table, filter)
	if err != nil {
		writeErrCode(w, CodeNotFound, err.Error(), 0)
		return
	}
	views := make([]RecordView, 0, len(records))
	for _, rec := range records {
		views = append(views, RecordView{ID: rec.ID, Owner: rec.Owner, Fields: rec.Fields})
	}
	writeJSON(w, http.StatusOK, RecordsResponse{Records: views})
}

func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.lookupSession(w, r.URL.Query().Get("client")); !ok {
		return
	}
	users := s.LoggedInUsers()
	if users == nil {
		users = []string{}
	}
	writeJSON(w, http.StatusOK, UsersResponse{Users: users})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, InfoResponse{
		Name:     s.cfg.Name,
		Apps:     len(s.LocalAppIDs()),
		Sessions: s.sessions.Len(),
	})
}
