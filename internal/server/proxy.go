package server

import (
	"discover/internal/appproto"
	"discover/internal/wire"
)

// ApplicationProxy encapsulates the entire server-side context of one
// *local* application: its unique identifier, registration (interface
// descriptor, ACL source, owner) and its three channels via the daemon
// endpoint. Remote applications have no local proxy; their traffic is
// routed through the Federation to the CorbaProxy at the host server, as
// in the paper.
type ApplicationProxy struct {
	srv *Server
	ep  *appproto.AppEndpoint
}

func newLocalProxy(s *Server, ep *appproto.AppEndpoint) *ApplicationProxy {
	return &ApplicationProxy{srv: s, ep: ep}
}

// ID returns the application's globally unique identifier.
func (p *ApplicationProxy) ID() string { return p.ep.ID() }

// Registration returns what the application registered.
func (p *ApplicationProxy) Registration() appproto.Registration { return p.ep.Registration() }

// Enqueue buffers a command for the application's next interaction phase.
func (p *ApplicationProxy) Enqueue(cmd *wire.Message) error { return p.ep.Enqueue(cmd) }

// BufferedCommands reports commands awaiting the next interaction phase.
func (p *ApplicationProxy) BufferedCommands() int { return p.ep.BufferedCommands() }
