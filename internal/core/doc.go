// Package core implements the paper's primary contribution: the
// middleware substrate for peer-to-peer integration of DISCOVER servers.
//
// Each server's substrate exposes the two interface levels of Section 3
// over the mini-ORB (internal/orb):
//
//   - DiscoverCorbaServer (level one, object key "DiscoverServer"):
//     authenticate peer-asserted users, list active applications and
//     logged-in users, answer level-two privilege queries, and manage
//     relay subscriptions.
//
//   - CorbaProxy (level two, one servant per local application, object key
//     "CorbaProxy/<appID>", also bound in the naming service under the
//     application id): forward commands, relay lock requests, fan
//     collaboration messages out, and serve update polls.
//
// A Control servant carries the fourth inter-server channel: error and
// system events plus pushed group traffic (the Salamander-style
// notification service of §5.1).
//
// Server discovery uses the trader service: every substrate exports a
// service offer of type DISCOVER with its name and endpoint in the
// property list, refreshes the offer's lease while alive, and queries the
// trader to find peers.
//
// # Update propagation
//
// Both designs of §5.2.3 are implemented and selectable by Config.Mode:
// Poll has the subscriber's stubs poll the host's application log, Push
// drives a per-peer relay sender that drains up to Config.RelayBatch
// queued messages per wakeup into a single oneway deliverBatch
// invocation (peers that predate batching are detected once and served
// per-message). Updates cross the WAN once per remote server and fan out
// locally.
//
// # Failure handling
//
// Every peer has a failure detector (healthy → suspect → down → probing)
// fed by regular invocation outcomes and a periodic heartbeat; DownAfter
// consecutive failures open a circuit breaker so operations fail fast
// with ErrPeerDown instead of burning the RPC timeout, and a recovery
// probe closes it again. See DESIGN.md §4d.
//
// # Telemetry
//
// Request-path substrate methods take a context.Context; a sampled
// request's active trace (internal/telemetry) rides it into the ORB,
// crosses the wire as a trailer, and comes back with the remote servant's
// dispatch time split out. Relay senders feed per-peer flush and
// queue-wait latency histograms. See DESIGN.md §4e.
package core
