package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"discover/internal/orb"
	"discover/internal/telemetry"
	"discover/internal/wire"
)

// TestDeliverBatchMatchesDeliver proves the batched control-channel push
// is observationally equivalent to the per-message form: the same
// messages, invoked either way against a real substrate, reach a
// connected client session in the same order.
func TestDeliverBatchMatchesDeliver(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()
	appID := as.AppID()

	sess, err := b.srv.Login(context.Background(), "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.srv.ConnectApp(context.Background(), sess, appID); err != nil {
		t.Fatal(err)
	}
	sess.Buffer.Drain(0) // discard connect-time traffic

	msgs := make([]*wire.Message, 6)
	for i := range msgs {
		msgs[i] = wire.NewUpdate(appID, uint64(1000+i),
			wire.Param{Key: "i", Value: fmt.Sprint(i)})
	}
	bControl := orb.ObjRef{Addr: b.orb.Addr(), Key: ControlKey}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Per-message deliver (two-way, so arrival is synchronous).
	for _, m := range msgs {
		if err := a.orb.Invoke(ctx, bControl, "deliver",
			deliverReq{App: appID, Msg: m, From: "rutgers"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	viaDeliver := sess.Buffer.Drain(0)

	// Same messages as one deliverBatch.
	items := make([]deliverItem, len(msgs))
	for i, m := range msgs {
		items[i] = deliverItem{App: appID, Msg: m}
	}
	if err := a.orb.Invoke(ctx, bControl, "deliverBatch",
		deliverBatchReq{Items: items, From: "rutgers"}, nil); err != nil {
		t.Fatal(err)
	}
	viaBatch := sess.Buffer.Drain(0)

	if len(viaDeliver) != len(msgs) {
		t.Fatalf("deliver path delivered %d messages, want %d", len(viaDeliver), len(msgs))
	}
	if len(viaBatch) != len(viaDeliver) {
		t.Fatalf("deliverBatch delivered %d messages, deliver delivered %d",
			len(viaBatch), len(viaDeliver))
	}
	for i := range viaDeliver {
		d, bm := viaDeliver[i], viaBatch[i]
		if d.Kind != bm.Kind || d.Seq != bm.Seq || d.Params[0].Value != bm.Params[0].Value {
			t.Errorf("message %d differs: deliver=%+v batch=%+v", i, d, bm)
		}
	}

	// The real subscription (created by ConnectApp above) registered a
	// relay sender at the host; it must be visible in the stats snapshot.
	rows := a.sub.RelayStats()
	found := false
	for _, r := range rows {
		if r.Peer == "caltech" {
			found = true
		}
	}
	if !found {
		t.Errorf("host RelayStats has no caltech row: %+v", rows)
	}
}

// TestRelayBatchInvocationCount pins the tentpole's N -> ceil(N/K) claim
// with counters: 100 queued messages drained with batchMax=32 must go out
// as exactly 4 ORB invocations (32+32+32+4).
func TestRelayBatchInvocationCount(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	n.addDomain("caltech", Push)
	n.discoverAll()

	var peer peerInfo
	for _, p := range a.sub.peerList() {
		if p.name == "caltech" {
			peer = p
		}
	}
	if peer.addr == "" {
		t.Fatal("caltech not discovered")
	}

	// Build the sender by hand so the queue can be preloaded before the
	// drain loop starts: that makes the batch boundaries deterministic.
	r := &relaySender{
		sub:       a.sub,
		peer:      peer,
		queue:     make(chan relayItem, relayQueueDepth),
		done:      make(chan struct{}),
		batchMax:  DefaultRelayBatch,
		flushHist: telemetry.GetHistogram("discover_relay_flush_seconds", "peer", peer.name),
		waitHist:  telemetry.GetHistogram("discover_relay_queue_wait_seconds", "peer", peer.name),
	}
	defer r.close()
	const total = 100
	for i := 0; i < total; i++ {
		r.queue <- relayItem{app: "wave", msg: wire.NewUpdate("wave", uint64(i))}
	}
	a.sub.wg.Add(1)
	go r.loop()

	waitFor(t, 5*time.Second, func() bool { return r.delivered.Load() == total })
	if got := r.invocations.Load(); got != 4 {
		t.Errorf("invocations = %d, want ceil(100/32) = 4", got)
	}
	if got := r.batches.Load(); got != 4 {
		t.Errorf("batches = %d, want 4", got)
	}
	if got := r.failures.Load(); got != 0 {
		t.Errorf("failures = %d, want 0", got)
	}
}

// TestRelayQueueFullDrops checks the shedding policy: a full queue drops
// and counts rather than blocking the broadcaster.
func TestRelayQueueFullDrops(t *testing.T) {
	r := &relaySender{
		peer:      peerInfo{name: "slow"},
		queue:     make(chan relayItem, 2),
		done:      make(chan struct{}),
		batchMax:  DefaultRelayBatch,
		flushHist: telemetry.GetHistogram("discover_relay_flush_seconds", "peer", "slow"),
		waitHist:  telemetry.GetHistogram("discover_relay_queue_wait_seconds", "peer", "slow"),
	}
	deliver := r.deliverFunc("wave")
	for i := 0; i < 5; i++ {
		deliver(wire.NewUpdate("wave", uint64(i)))
	}
	st := r.stats()
	if st.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", st.Dropped)
	}
	if st.Queued != 2 {
		t.Errorf("queued = %d, want 2", st.Queued)
	}
	if st.Peer != "slow" {
		t.Errorf("peer = %q", st.Peer)
	}
}

// TestRelayBackoffOnDeadPeer checks that a failing push counts a failure
// and the sender keeps running (backing off) instead of spinning or dying.
func TestRelayBackoffOnDeadPeer(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)

	// 127.0.0.1:1 is essentially guaranteed connection-refused.
	r := newRelaySender(a.sub, peerInfo{name: "ghost", addr: "127.0.0.1:1"})
	defer r.close()
	r.deliverFunc("wave")(wire.NewUpdate("wave", 1))

	waitFor(t, 5*time.Second, func() bool { return r.failures.Load() >= 1 })
	if got := r.delivered.Load(); got != 0 {
		t.Errorf("delivered = %d to a dead peer", got)
	}
	// Still alive: a later enqueue is accepted (the loop is sleeping in
	// backoff, not exited).
	r.deliverFunc("wave")(wire.NewUpdate("wave", 2))
	if got := r.dropped.Load(); got != 0 {
		t.Errorf("dropped = %d, want 0 (queue nearly empty)", got)
	}
}
