package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"discover/internal/server"
)

// PeerState is one peer's position in the substrate's failure-detector
// state machine. Invocation outcomes and control-channel heartbeats feed
// it; remote operations consult it before paying a WAN round trip.
type PeerState int

const (
	// PeerHealthy: recent invocations and heartbeats succeed.
	PeerHealthy PeerState = iota
	// PeerSuspect: one or more recent failures (or a missed discovery
	// round) but not enough to declare the peer dead. Operations still go
	// through; the next heartbeat decides.
	PeerSuspect
	// PeerDown: consecutive failures crossed the threshold. The circuit
	// breaker is open — operations fail fast with ErrPeerDown instead of
	// burning an RPC timeout each.
	PeerDown
	// PeerProbing: a recovery probe is in flight for a down peer.
	PeerProbing
)

// String renders the state for stats and logs.
func (s PeerState) String() string {
	switch s {
	case PeerHealthy:
		return "healthy"
	case PeerSuspect:
		return "suspect"
	case PeerDown:
		return "down"
	case PeerProbing:
		return "probing"
	default:
		return fmt.Sprintf("PeerState(%d)", int(s))
	}
}

// Typed fast-fail errors returned while a peer's circuit breaker is open.
// Both carry an API error code (server.Coder) so the HTTP edge maps them
// to the uniform error envelope without this package appearing there.
var (
	// ErrPeerDown: the peer's breaker is open; the operation was not
	// attempted. Callers should degrade (serve cached state, fail a
	// relayed wait) rather than retry immediately.
	ErrPeerDown error = &breakerError{
		msg: "core: peer down (circuit open)", code: "peer_down",
	}
	// ErrPeerSuspect: a recovery probe is deciding the peer's fate;
	// operations are rejected until it concludes.
	ErrPeerSuspect error = &breakerError{
		msg: "core: peer suspect (recovery probe in progress)", code: "peer_suspect",
	}
)

// breakerError is a sentinel (compared with errors.Is by identity, as
// before) that also names its API error code.
type breakerError struct {
	msg  string
	code string
}

func (e *breakerError) Error() string     { return e.msg }
func (e *breakerError) ErrorCode() string { return e.code }

// Failure-detector defaults (Config can override each).
const (
	DefaultHeartbeatEvery = 2 * time.Second
	DefaultProbeTimeout   = 2 * time.Second
	DefaultDialTimeout    = 2 * time.Second
	DefaultSuspectAfter   = 1
	DefaultDownAfter      = 3
)

// peerHealth is the detector's record for one peer.
type peerHealth struct {
	name        string
	addr        string
	state       PeerState
	consecFails int
	lastErr     string
	hbRTT       time.Duration // last successful heartbeat round trip
	opens       uint64        // breaker open transitions
	closes      uint64        // breaker close (recovery) transitions
	missedDisc  int           // consecutive discovery rounds without our offer
	// recovered is non-nil while state is Down or Probing; closed (and
	// nilled) when the prober brings the peer back. Parked relay senders
	// select on it instead of hammering a dead peer.
	recovered chan struct{}
}

// healthTable tracks every known peer's health. The onDown/onRecovered
// callbacks run after the table lock is released, so they may call back
// into the substrate freely.
type healthTable struct {
	mu           sync.Mutex
	peers        map[string]*peerHealth
	suspectAfter int
	downAfter    int
	onDown       func(name, addr string)
	onRecovered  func(name, addr string)
}

func newHealthTable(suspectAfter, downAfter int) *healthTable {
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter
	}
	if downAfter <= 0 {
		downAfter = DefaultDownAfter
	}
	return &healthTable{
		peers:        make(map[string]*peerHealth),
		suspectAfter: suspectAfter,
		downAfter:    downAfter,
	}
}

func (h *healthTable) entry(name string) *peerHealth {
	p, ok := h.peers[name]
	if !ok {
		p = &peerHealth{name: name, state: PeerHealthy}
		h.peers[name] = p
	}
	return p
}

// state reports a peer's current state (PeerHealthy if unknown).
func (h *healthTable) state(name string) PeerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.peers[name]; ok {
		return p.state
	}
	return PeerHealthy
}

// allow is the circuit-breaker gate: nil when an operation may proceed, a
// typed fast-fail error when the peer's breaker is open.
func (h *healthTable) allow(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[name]
	if !ok {
		return nil
	}
	switch p.state {
	case PeerDown:
		return fmt.Errorf("core: peer %s: %w", name, ErrPeerDown)
	case PeerProbing:
		return fmt.Errorf("core: peer %s: %w", name, ErrPeerSuspect)
	default:
		return nil
	}
}

// reportFailure records a peer-failure-classified invocation outcome.
// Crossing downAfter consecutive failures opens the breaker and fires
// onDown (outside the lock).
func (h *healthTable) reportFailure(name, addr string, err error) {
	h.mu.Lock()
	p := h.entry(name)
	if addr != "" {
		p.addr = addr
	}
	if err != nil {
		p.lastErr = err.Error()
	}
	var fire func(string, string)
	switch p.state {
	case PeerDown, PeerProbing:
		// Already open; probes alone decide recovery.
	default:
		p.consecFails++
		if p.consecFails >= h.downAfter {
			p.state = PeerDown
			p.opens++
			if p.recovered == nil {
				p.recovered = make(chan struct{})
			}
			fire = h.onDown
		} else if p.consecFails >= h.suspectAfter {
			p.state = PeerSuspect
		}
	}
	addrNow := p.addr
	h.mu.Unlock()
	if fire != nil {
		fire(name, addrNow)
	}
}

// reportSuccess records a successful invocation against a peer. It clears
// suspicion but deliberately does NOT close an open breaker: recovery goes
// through the prober so subscriptions get reasserted exactly once.
func (h *healthTable) reportSuccess(name, addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.entry(name)
	if addr != "" {
		p.addr = addr
	}
	p.consecFails = 0
	p.missedDisc = 0
	if p.state == PeerSuspect {
		p.state = PeerHealthy
		p.lastErr = ""
	}
}

// heartbeatOK records a successful heartbeat and its round trip.
func (h *healthTable) heartbeatOK(name, addr string, rtt time.Duration) {
	h.mu.Lock()
	p := h.entry(name)
	p.hbRTT = rtt
	h.mu.Unlock()
	h.reportSuccess(name, addr)
}

// beginProbe moves a down peer to probing so concurrent heartbeat rounds
// don't race duplicate probes. Returns false if the peer isn't down.
func (h *healthTable) beginProbe(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[name]
	if !ok || p.state != PeerDown {
		return false
	}
	p.state = PeerProbing
	return true
}

// finishProbe concludes a recovery probe: alive closes the breaker, wakes
// parked senders and fires onRecovered (outside the lock); dead returns
// the peer to Down for the next heartbeat round.
func (h *healthTable) finishProbe(name string, alive bool, err error) {
	h.mu.Lock()
	p, ok := h.peers[name]
	if !ok || p.state != PeerProbing {
		h.mu.Unlock()
		return
	}
	var fire func(string, string)
	if alive {
		p.state = PeerHealthy
		p.consecFails = 0
		p.missedDisc = 0
		p.lastErr = ""
		p.closes++
		if p.recovered != nil {
			close(p.recovered)
			p.recovered = nil
		}
		fire = h.onRecovered
	} else {
		p.state = PeerDown
		if err != nil {
			p.lastErr = err.Error()
		}
	}
	addrNow := p.addr
	h.mu.Unlock()
	if fire != nil {
		fire(name, addrNow)
	}
}

// blockedCh returns the channel a sender should park on while the peer is
// down or probing, or nil when the peer is usable.
func (h *healthTable) blockedCh(name string) chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[name]
	if !ok {
		return nil
	}
	if p.state == PeerDown || p.state == PeerProbing {
		return p.recovered
	}
	return nil
}

// discoverySeen records that this round's trader query returned the peer.
func (h *healthTable) discoverySeen(name, addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.entry(name)
	p.addr = addr
	p.missedDisc = 0
}

// keepThroughMiss decides whether a peer absent from this discovery round
// should stay in the peer table. A known-healthy peer whose trader offer
// momentarily lapsed (a late lease refresh) is kept for one round, marked
// suspect, and left to the prober/heartbeat; a second miss, or a peer the
// breaker already declared down, is dropped.
func (h *healthTable) keepThroughMiss(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[name]
	if !ok {
		return false
	}
	p.missedDisc++
	if p.state == PeerDown || p.state == PeerProbing {
		return false
	}
	if p.missedDisc > 1 {
		return false
	}
	if p.state == PeerHealthy {
		p.state = PeerSuspect
		p.lastErr = "trader offer missing"
	}
	return true
}

// forget drops a peer from the table, waking anything parked on it.
func (h *healthTable) forget(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[name]
	if !ok {
		return
	}
	if p.recovered != nil {
		close(p.recovered)
		p.recovered = nil
	}
	delete(h.peers, name)
}

// snapshot renders the table for GET /api/stats.
func (h *healthTable) snapshot() []server.PeerHealthStats {
	h.mu.Lock()
	out := make([]server.PeerHealthStats, 0, len(h.peers))
	for _, p := range h.peers {
		out = append(out, server.PeerHealthStats{
			Peer:                p.name,
			State:               p.state.String(),
			ConsecutiveFailures: p.consecFails,
			LastError:           p.lastErr,
			BreakerOpens:        p.opens,
			BreakerCloses:       p.closes,
			HeartbeatRTTMicros:  p.hbRTT.Microseconds(),
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
