package core

import (
	"testing"
	"time"

	"discover/internal/server"
)

// TestDirCacheTTLJitterSpread checks that per-entry TTL jitter actually
// spreads expiry: every multiplier stays inside ±10%, and a population of
// entries does not share one effective TTL (which would make a flash
// crowd of cached listings expire in lockstep).
func TestDirCacheTTLJitterSpread(t *testing.T) {
	const n = 500
	min, max := 2.0, 0.0
	for i := 0; i < n; i++ {
		j := ttlJitter()
		if j < 0.9 || j > 1.1 {
			t.Fatalf("jitter %v outside [0.9, 1.1]", j)
		}
		if j < min {
			min = j
		}
		if j > max {
			max = j
		}
	}
	// With 500 uniform draws over a 0.2-wide window, a spread this small
	// means the draw is not actually random.
	if max-min < 0.1 {
		t.Fatalf("jitter spread %v too narrow (min %v, max %v)", max-min, min, max)
	}

	// The multiplier must reach the freshness check: entries completed at
	// the same instant get distinct effective TTLs.
	c := newDirCache("jitter-test", time.Hour)
	ttls := make(map[time.Duration]bool)
	for _, peer := range []string{"p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"} {
		p := c.plan(peer, "alice", false)
		if p.state != dirFetch || !p.lead {
			t.Fatalf("first plan for %s: state %v, lead %v", peer, p.state, p.lead)
		}
		c.complete(peer, "alice", []server.AppInfo{{ID: peer + "#1"}}, nil)
		e := c.entries[dirKey{peer: peer, user: "alice"}]
		if e.jitter < 0.9 || e.jitter > 1.1 {
			t.Fatalf("entry jitter %v outside [0.9, 1.1]", e.jitter)
		}
		ttls[effectiveTTL(time.Hour, e.jitter)] = true
	}
	if len(ttls) < 2 {
		t.Fatalf("all %d entries share one effective TTL; expiry is in lockstep", len(ttls))
	}
}

// TestDirCacheInvalidate: the generic entry point drops freshness for
// every listing cached for the peer — across users — while keeping the
// data as the degraded-mode fallback, and it counts separately from the
// event/health invalidation reasons.
func TestDirCacheInvalidate(t *testing.T) {
	c := newDirCache("invalidate-test", time.Hour)
	for _, k := range []dirKey{{"p1", "alice"}, {"p1", "bob"}, {"p2", "alice"}} {
		p := c.plan(k.peer, k.user, false)
		if p.state != dirFetch {
			t.Fatalf("first plan for %v: state %v", k, p.state)
		}
		c.complete(k.peer, k.user, []server.AppInfo{{ID: k.peer + "#1"}}, nil)
	}

	c.Invalidate("p1")

	// Both of p1's user listings are stale now; p2's stays fresh.
	if p := c.plan("p1", "alice", false); p.state != dirFetch {
		t.Fatalf("p1/alice after Invalidate: state %v, want fetch", p.state)
	}
	if p := c.plan("p1", "bob", false); p.state != dirFetch {
		t.Fatalf("p1/bob after Invalidate: state %v, want fetch", p.state)
	}
	if p := c.plan("p2", "alice", false); p.state != dirFresh {
		t.Fatalf("p2/alice after Invalidate(p1): state %v, want fresh", p.state)
	}

	// The data survives as the degraded fallback: a breaker-open serve
	// still returns the listing, marked Unavailable.
	if p := c.plan("p1", "alice", true); p.state != dirUnavailable ||
		len(p.apps) != 1 || !p.apps[0].Unavailable {
		t.Fatalf("invalidated entry lost its degraded fallback: %+v", p)
	}

	st := c.stats()
	if st.PeerInvalidations != 2 {
		t.Fatalf("PeerInvalidations = %d, want 2", st.PeerInvalidations)
	}
	if st.EventInvalidations != 0 || st.HealthInvalidations != 0 {
		t.Fatalf("Invalidate leaked into other reasons: %+v", st)
	}

	// Invalidating an already-invalid peer (or an unknown one) is a no-op
	// that does not inflate the counter.
	c.Invalidate("p1")
	c.Invalidate("nobody")
	if got := c.stats().PeerInvalidations; got != 2 {
		t.Fatalf("no-op Invalidate moved the counter to %d", got)
	}
}

// TestDirCacheJitterNeverWidensPastBound: the effective TTL stays within
// ±10% of the configured window, so jitter cannot stretch staleness
// beyond what DESIGN §4f promises.
func TestDirCacheJitterNeverWidensPastBound(t *testing.T) {
	base := 2 * time.Second
	for i := 0; i < 200; i++ {
		got := effectiveTTL(base, ttlJitter())
		if got < time.Duration(float64(base)*0.9) || got > time.Duration(float64(base)*1.1) {
			t.Fatalf("effective TTL %v outside ±10%% of %v", got, base)
		}
	}
	if effectiveTTL(base, 0) != base {
		t.Fatalf("zero jitter (unfetched entry) must fall back to the configured TTL")
	}
}
