package core

import (
	"testing"
	"time"

	"discover/internal/server"
)

// TestDirCacheTTLJitterSpread checks that per-entry TTL jitter actually
// spreads expiry: every multiplier stays inside ±10%, and a population of
// entries does not share one effective TTL (which would make a flash
// crowd of cached listings expire in lockstep).
func TestDirCacheTTLJitterSpread(t *testing.T) {
	const n = 500
	min, max := 2.0, 0.0
	for i := 0; i < n; i++ {
		j := ttlJitter()
		if j < 0.9 || j > 1.1 {
			t.Fatalf("jitter %v outside [0.9, 1.1]", j)
		}
		if j < min {
			min = j
		}
		if j > max {
			max = j
		}
	}
	// With 500 uniform draws over a 0.2-wide window, a spread this small
	// means the draw is not actually random.
	if max-min < 0.1 {
		t.Fatalf("jitter spread %v too narrow (min %v, max %v)", max-min, min, max)
	}

	// The multiplier must reach the freshness check: entries completed at
	// the same instant get distinct effective TTLs.
	c := newDirCache("jitter-test", time.Hour)
	ttls := make(map[time.Duration]bool)
	for _, peer := range []string{"p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"} {
		p := c.plan(peer, "alice", false)
		if p.state != dirFetch || !p.lead {
			t.Fatalf("first plan for %s: state %v, lead %v", peer, p.state, p.lead)
		}
		c.complete(peer, "alice", []server.AppInfo{{ID: peer + "#1"}}, nil)
		e := c.entries[dirKey{peer: peer, user: "alice"}]
		if e.jitter < 0.9 || e.jitter > 1.1 {
			t.Fatalf("entry jitter %v outside [0.9, 1.1]", e.jitter)
		}
		ttls[effectiveTTL(time.Hour, e.jitter)] = true
	}
	if len(ttls) < 2 {
		t.Fatalf("all %d entries share one effective TTL; expiry is in lockstep", len(ttls))
	}
}

// TestDirCacheJitterNeverWidensPastBound: the effective TTL stays within
// ±10% of the configured window, so jitter cannot stretch staleness
// beyond what DESIGN §4f promises.
func TestDirCacheJitterNeverWidensPastBound(t *testing.T) {
	base := 2 * time.Second
	for i := 0; i < 200; i++ {
		got := effectiveTTL(base, ttlJitter())
		if got < time.Duration(float64(base)*0.9) || got > time.Duration(float64(base)*1.1) {
			t.Fatalf("effective TTL %v outside ±10%% of %v", got, base)
		}
	}
	if effectiveTTL(base, 0) != base {
		t.Fatalf("zero jitter (unfetched entry) must fall back to the configured TTL")
	}
}
