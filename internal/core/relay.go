package core

import (
	"context"
	"time"

	"discover/internal/server"
	"discover/internal/wire"
)

// relaySender is the host-side push path for one subscribed peer: an
// ordered, bounded queue drained by a single goroutine that invokes the
// peer's Control.deliver. One sender serves every application that peer
// subscribed to, so per-application ordering is preserved.
type relaySender struct {
	sub   *Substrate
	peer  peerInfo
	queue chan relayItem
	done  chan struct{}
}

type relayItem struct {
	app string
	msg *wire.Message
}

// relayQueueDepth bounds the per-peer push queue; beyond it messages are
// dropped (slow-peer shedding, same policy as client FIFOs).
const relayQueueDepth = 1024

func newRelaySender(s *Substrate, peer peerInfo) *relaySender {
	r := &relaySender{
		sub:   s,
		peer:  peer,
		queue: make(chan relayItem, relayQueueDepth),
		done:  make(chan struct{}),
	}
	s.wg.Add(1)
	go r.loop()
	return r
}

// deliverFunc adapts the sender to a collab.DeliverFunc for one app.
func (r *relaySender) deliverFunc(appID string) func(*wire.Message) {
	return func(m *wire.Message) {
		select {
		case r.queue <- relayItem{app: appID, msg: m}:
		case <-r.done:
		default:
			// Queue full: drop, as with slow clients. The peer catches up
			// from the application log if it cares (pollUpdates).
		}
	}
}

func (r *relaySender) loop() {
	defer r.sub.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case it := <-r.queue:
			// Oneway delivery: the push is pipelined, never blocked on a
			// WAN round trip per message.
			ctx, cancel := r.sub.rpcCtx()
			err := r.sub.orb.InvokeOneway(ctx, r.peer.controlRef(), "deliver",
				deliverReq{App: it.app, Msg: it.msg, From: r.sub.srv.Name()})
			cancel()
			if err != nil {
				r.sub.cfg.Logf("core %s: relay to %s: %v", r.sub.srv.Name(), r.peer.name, err)
			}
		}
	}
}

func (r *relaySender) close() {
	select {
	case <-r.done:
	default:
		close(r.done)
	}
}

// poller is the subscriber-side poll path for one remote application: it
// periodically pulls new group traffic from the host's application log
// and feeds it to the local fan-out, filtering responses addressed to
// other servers' clients.
type poller struct {
	sub     *Substrate
	peer    peerInfo
	appID   string
	lastSeq uint64
	done    chan struct{}
}

func newPoller(s *Substrate, peer peerInfo, appID string, every time.Duration) *poller {
	p := &poller{sub: s, peer: peer, appID: appID, done: make(chan struct{})}
	s.wg.Add(1)
	go p.loop(every)
	return p
}

func (p *poller) loop(every time.Duration) {
	defer p.sub.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
			p.pollOnce()
		}
	}
}

// pollOnce pulls and dispatches one batch.
func (p *poller) pollOnce() {
	ctx, cancel := context.WithTimeout(context.Background(), p.sub.cfg.RPCTimeout)
	defer cancel()
	var resp pollResp
	err := p.sub.orb.Invoke(ctx, p.sub.proxyRef(p.peer, p.appID), "pollUpdates",
		pollReq{SinceSeq: p.lastSeq, From: p.sub.srv.Name()}, &resp)
	if err != nil {
		p.sub.cfg.Logf("core %s: poll %s: %v", p.sub.srv.Name(), p.appID, err)
		return
	}
	p.lastSeq = resp.LastSeq
	self := p.sub.srv.Name()
	for _, m := range resp.Msgs {
		switch m.Kind {
		case wire.KindResponse, wire.KindError:
			if server.ServerOfClient(m.Client) != self {
				continue // another server's client
			}
		}
		p.sub.srv.DeliverRemoteMessage(p.appID, m, p.peer.name)
	}
}

func (p *poller) close() {
	select {
	case <-p.done:
	default:
		close(p.done)
	}
}
