package core

import (
	"context"
	"sync/atomic"
	"time"

	"discover/internal/orb"
	"discover/internal/server"
	"discover/internal/telemetry"
	"discover/internal/wire"
)

// relaySender is the host-side push path for one subscribed peer: an
// ordered, bounded queue drained by a single goroutine that invokes the
// peer's Control servant. One sender serves every application that peer
// subscribed to, so per-application ordering is preserved.
//
// Each wakeup drains up to batchMax queued items and pushes them with ONE
// deliverBatch oneway invocation — the batching that keeps the per-message
// middleware overhead (ablation A1) off the WAN hot path. Peers that
// predate deliverBatch are detected once via a two-way probe and served
// with per-message deliver invocations coalesced into a single write.
type relaySender struct {
	sub      *Substrate
	peer     peerInfo
	queue    chan relayItem
	done     chan struct{}
	batchMax int
	batch    []relayItem // drain scratch; loop goroutine only

	probed atomic.Bool // peer confirmed to support deliverBatch
	legacy atomic.Bool // peer confirmed to lack deliverBatch

	// Histogram pointers are resolved once at construction so the loop's
	// hot path never touches the registry map (and stays alloc-free).
	flushHist *telemetry.Histogram // time spent pushing one drained batch
	waitHist  *telemetry.Histogram // per-message enqueue-to-drain wait

	delivered   atomic.Uint64 // messages handed to the ORB
	dropped     atomic.Uint64 // messages shed on a full queue
	batches     atomic.Uint64 // deliverBatch invocations issued
	invocations atomic.Uint64 // total ORB invocations issued
	failures    atomic.Uint64 // failed pushes (whole batch lost)
}

type relayItem struct {
	app string
	msg *wire.Message
	at  time.Time // enqueue time, for the queue-wait histogram
}

// relayQueueDepth bounds the per-peer push queue; beyond it messages are
// dropped (slow-peer shedding, same policy as client FIFOs).
const relayQueueDepth = 1024

// DefaultRelayBatch is the default drain limit per push invocation.
const DefaultRelayBatch = 32

// Backoff bounds for a peer whose pushes fail: without it the sender
// retries the dead peer at full queue-drain rate and floods the log.
const (
	relayBackoffMin = 100 * time.Millisecond
	relayBackoffMax = 5 * time.Second
)

func newRelaySender(s *Substrate, peer peerInfo) *relaySender {
	r := &relaySender{
		sub:       s,
		peer:      peer,
		queue:     make(chan relayItem, relayQueueDepth),
		done:      make(chan struct{}),
		batchMax:  s.cfg.RelayBatch,
		flushHist: telemetry.GetHistogram("discover_relay_flush_seconds", "peer", peer.name),
		waitHist:  telemetry.GetHistogram("discover_relay_queue_wait_seconds", "peer", peer.name),
	}
	s.wg.Add(1)
	go r.loop()
	return r
}

// deliverFunc adapts the sender to a collab.DeliverFunc for one app.
func (r *relaySender) deliverFunc(appID string) func(*wire.Message) {
	return func(m *wire.Message) {
		select {
		case r.queue <- relayItem{app: appID, msg: m, at: time.Now()}:
		case <-r.done:
		default:
			// Queue full: drop, as with slow clients. The peer catches up
			// from the application log if it cares (pollUpdates). Counted
			// so shedding is visible in GET /api/stats.
			r.dropped.Add(1)
		}
	}
}

// drain collects first plus up to batchMax-1 further queued items without
// blocking. The single drain goroutine preserves enqueue order.
func (r *relaySender) drain(first relayItem) []relayItem {
	batch := append(r.batch[:0], first)
	for len(batch) < r.batchMax {
		select {
		case it := <-r.queue:
			batch = append(batch, it)
		default:
			r.batch = batch
			return batch
		}
	}
	r.batch = batch
	return batch
}

func (r *relaySender) loop() {
	defer r.sub.wg.Done()
	var backoff time.Duration
	for {
		select {
		case <-r.done:
			return
		case it := <-r.queue:
			// Park while the peer's breaker is open: the recovery prober
			// owns retries, and wakes us by closing the recovered channel.
			// Queued traffic beyond the queue bound is shed as usual.
			if ch := r.sub.health.blockedCh(r.peer.name); ch != nil {
				select {
				case <-r.done:
					return
				case <-ch:
					backoff = 0
				}
			}
			batch := r.drain(it)
			t0 := time.Now()
			for i := range batch {
				r.waitHist.Observe(t0.Sub(batch[i].at))
			}
			if err := r.send(batch); err != nil {
				r.failures.Add(1)
				r.sub.cfg.Logf("core %s: relay to %s: %v", r.sub.srv.Name(), r.peer.name, err)
				// The peer is likely down or restarted: drop the pooled
				// connection so the next attempt redials, feed the failure
				// detector, and back off instead of retrying at full drain
				// rate.
				r.sub.orb.DropConn(r.peer.addr)
				if orb.IsPeerFailure(err) {
					r.sub.health.reportFailure(r.peer.name, r.peer.addr, err)
				}
				backoff = nextBackoff(backoff)
				select {
				case <-r.done:
					return
				case <-time.After(backoff):
				}
			} else {
				backoff = 0
				r.flushHist.Observe(time.Since(t0))
				r.delivered.Add(uint64(len(batch)))
			}
		}
	}
}

func nextBackoff(d time.Duration) time.Duration {
	if d == 0 {
		return relayBackoffMin
	}
	d *= 2
	if d > relayBackoffMax {
		d = relayBackoffMax
	}
	return d
}

// send pushes one drained batch to the peer. Oneway delivery: the push is
// pipelined, never blocked on a WAN round trip per message — except for
// the first multi-message batch, which goes two-way once so a peer without
// deliverBatch surfaces BAD_OPERATION instead of silently discarding it.
func (r *relaySender) send(batch []relayItem) error {
	ctx, cancel := r.sub.rpcCtx()
	defer cancel()
	if len(batch) == 1 {
		r.invocations.Add(1)
		return r.sub.orb.InvokeOneway(ctx, r.peer.controlRef(), "deliver",
			deliverReq{App: batch[0].app, Msg: batch[0].msg, From: r.sub.srv.Name()})
	}
	if !r.legacy.Load() {
		items := make([]deliverItem, len(batch))
		for i, it := range batch {
			items[i] = deliverItem{App: it.app, Msg: it.msg}
		}
		req := deliverBatchReq{Items: items, From: r.sub.srv.Name()}
		r.invocations.Add(1)
		if r.probed.Load() {
			r.batches.Add(1)
			return r.sub.orb.InvokeOneway(ctx, r.peer.controlRef(), "deliverBatch", req)
		}
		err := r.sub.orb.Invoke(ctx, r.peer.controlRef(), "deliverBatch", req, nil)
		if err == nil {
			r.probed.Store(true)
			r.batches.Add(1)
			return nil
		}
		if !orb.IsRemote(err, orb.CodeNoMethod) {
			return err
		}
		r.legacy.Store(true)
		r.sub.cfg.Logf("core %s: peer %s lacks deliverBatch, using per-message deliver",
			r.sub.srv.Name(), r.peer.name)
	}
	// Mixed-version fallback: one deliver invocation per message, still
	// coalesced into a single write on the pooled connection.
	reqs := make([]any, len(batch))
	for i, it := range batch {
		reqs[i] = deliverReq{App: it.app, Msg: it.msg, From: r.sub.srv.Name()}
	}
	r.invocations.Add(uint64(len(reqs)))
	return r.sub.orb.InvokeOnewayBatch(ctx, r.peer.controlRef(), "deliver", reqs)
}

// stats snapshots the sender's counters for /api/stats.
func (r *relaySender) stats() server.RelayStats {
	return server.RelayStats{
		Peer:        r.peer.name,
		Queued:      len(r.queue),
		Delivered:   r.delivered.Load(),
		Dropped:     r.dropped.Load(),
		Batches:     r.batches.Load(),
		Invocations: r.invocations.Load(),
		Failures:    r.failures.Load(),
	}
}

func (r *relaySender) close() {
	select {
	case <-r.done:
	default:
		close(r.done)
	}
}

// poller is the subscriber-side poll path for one remote application: it
// periodically pulls new group traffic from the host's application log
// and feeds it to the local fan-out, filtering responses addressed to
// other servers' clients.
type poller struct {
	sub     *Substrate
	peer    peerInfo
	appID   string
	lastSeq uint64
	scratch []*wire.Message
	done    chan struct{}
}

func newPoller(s *Substrate, peer peerInfo, appID string, every time.Duration) *poller {
	p := &poller{sub: s, peer: peer, appID: appID, done: make(chan struct{})}
	s.wg.Add(1)
	go p.loop(every)
	return p
}

func (p *poller) loop(every time.Duration) {
	defer p.sub.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
			p.pollOnce()
		}
	}
}

// pollOnce pulls one batch and dispatches it through the batched local
// fan-out (one group lookup per poll, not per message).
func (p *poller) pollOnce() {
	if p.sub.health.allow(p.peer.name) != nil {
		return // breaker open: skip the round, the prober decides recovery
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.sub.cfg.RPCTimeout)
	defer cancel()
	var resp pollResp
	// Polls are bulk exchanges: a busy application's accumulated update
	// batch is large and compressible on a v2 connection.
	err := p.sub.orb.Invoke(orb.WithBulk(ctx), p.sub.proxyRef(p.peer, p.appID), "pollUpdates",
		pollReq{SinceSeq: p.lastSeq, From: p.sub.srv.Name()}, &resp)
	p.sub.observePeer(p.peer, err)
	if err != nil {
		p.sub.cfg.Logf("core %s: poll %s: %v", p.sub.srv.Name(), p.appID, err)
		return
	}
	p.lastSeq = resp.LastSeq
	self := p.sub.srv.Name()
	keep := p.scratch[:0]
	for _, m := range resp.Msgs {
		switch m.Kind {
		case wire.KindResponse, wire.KindError:
			if server.ServerOfClient(m.Client) != self {
				continue // another server's client
			}
		}
		keep = append(keep, m)
	}
	p.sub.srv.DeliverRemoteBatch(p.appID, keep, p.peer.name)
	p.scratch = keep[:0]
}

func (p *poller) close() {
	select {
	case <-p.done:
	default:
		close(p.done)
	}
}
