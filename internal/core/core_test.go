package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"discover/internal/app"
	"discover/internal/appproto"
	"discover/internal/orb"
	"discover/internal/policy"
	"discover/internal/server"
	"discover/internal/wire"
)

// testNet is a federation of DISCOVER domains plus shared naming/trader.
type testNet struct {
	t         *testing.T
	traderORB *orb.ORB
	traderRef orb.ObjRef
	namingRef orb.ObjRef
	naming    *orb.Naming
	domains   map[string]*domain
}

type domain struct {
	srv *server.Server
	orb *orb.ORB
	sub *Substrate
	app *appproto.Session // optional
}

func newTestNet(t *testing.T) *testNet {
	t.Helper()
	to := orb.New()
	if err := to.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { to.Close() })
	naming := orb.NewNaming()
	to.Register(orb.TraderKey, orb.NewTrader().Servant())
	to.Register(orb.NamingKey, naming.Servant())
	return &testNet{
		t:         t,
		traderORB: to,
		traderRef: orb.ObjRef{Addr: to.Addr(), Key: orb.TraderKey},
		namingRef: orb.ObjRef{Addr: to.Addr(), Key: orb.NamingKey},
		naming:    naming,
		domains:   make(map[string]*domain),
	}
}

func (n *testNet) addDomain(name string, mode UpdateMode) *domain {
	n.t.Helper()
	srv, err := server.New(server.Config{Name: name, RecordUpdates: true, Logf: func(string, ...any) {}})
	if err != nil {
		n.t.Fatal(err)
	}
	if err := srv.ListenDaemon("127.0.0.1:0"); err != nil {
		n.t.Fatal(err)
	}
	n.t.Cleanup(srv.Close)
	srv.Auth().SetUserSecret("alice", "pw")
	srv.Auth().SetUserSecret("bob", "pw")

	o := orb.New()
	if err := o.Listen("127.0.0.1:0"); err != nil {
		n.t.Fatal(err)
	}
	n.t.Cleanup(func() { o.Close() })

	sub, err := New(Config{
		Server:        srv,
		ORB:           o,
		TraderRef:     n.traderRef,
		NamingRef:     n.namingRef,
		Mode:          mode,
		PollInterval:  20 * time.Millisecond,
		DiscoverEvery: 200 * time.Millisecond,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		n.t.Fatal(err)
	}
	if err := sub.Start(); err != nil {
		n.t.Fatal(err)
	}
	n.t.Cleanup(sub.Close)

	d := &domain{srv: srv, orb: o, sub: sub}
	n.domains[name] = d
	return d
}

// discoverAll forces every domain to refresh its peer table now.
func (n *testNet) discoverAll() {
	for _, d := range n.domains {
		if err := d.sub.DiscoverPeers(); err != nil {
			n.t.Fatal(err)
		}
	}
}

// attachApp connects a synthetic application to a domain's server.
func (n *testNet) attachApp(d *domain, name string, users []app.UserGrant) *appproto.Session {
	n.t.Helper()
	rt, err := app.NewRuntime(app.Config{
		Name: name, Kernel: app.NewSeismic1D(64), ComputeSteps: 2, Users: users,
	})
	if err != nil {
		n.t.Fatal(err)
	}
	as, err := appproto.Dial(context.Background(), d.srv.Daemon().Addr(), rt)
	if err != nil {
		n.t.Fatal(err)
	}
	n.t.Cleanup(func() { as.Close() })
	deadline := time.Now().Add(2 * time.Second)
	for len(d.srv.LocalAppIDs()) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	d.app = as
	return as
}

func defaultUsers() []app.UserGrant {
	return []app.UserGrant{
		{User: "alice", Privilege: "steer"},
		{User: "bob", Privilege: "monitor"},
	}
}

// waitFor polls a predicate driving optional phase pumps.
func waitFor(t *testing.T, timeout time.Duration, step func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if step() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never satisfied")
}

func TestDiscoveryViaTrader(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	c := n.addDomain("utexas", Push)
	n.discoverAll()

	for _, d := range []*domain{a, b, c} {
		peers := d.sub.Peers()
		if len(peers) != 2 {
			t.Errorf("%s sees peers %v", d.srv.Name(), peers)
		}
		for _, p := range peers {
			if p == d.srv.Name() {
				t.Errorf("%s discovered itself", p)
			}
		}
	}
}

func TestSubstrateCloseWithdrawsOffer(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	n.discoverAll()
	if len(a.sub.Peers()) != 1 {
		t.Fatal("setup failed")
	}
	b.sub.Close()
	// One missed discovery round keeps a known peer (marked suspect) to
	// ride out a momentary trader-offer lapse; the second drops it.
	if err := a.sub.DiscoverPeers(); err != nil {
		t.Fatal(err)
	}
	if len(a.sub.Peers()) != 1 {
		t.Errorf("peer dropped on first missed round: %v", a.sub.Peers())
	}
	if err := a.sub.DiscoverPeers(); err != nil {
		t.Fatal(err)
	}
	if len(a.sub.Peers()) != 0 {
		t.Errorf("withdrawn peer still discovered: %v", a.sub.Peers())
	}
}

func TestGlobalAppListMergesDomains(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	n.attachApp(a, "wave-a", defaultUsers())
	n.attachApp(b, "wave-b", defaultUsers())
	n.discoverAll()

	apps := a.srv.Apps(context.Background(), "alice")
	if len(apps) != 2 {
		t.Fatalf("alice sees %v", apps)
	}
	servers := map[string]bool{}
	for _, ai := range apps {
		servers[ai.Server] = true
		if ai.Privilege != "steer" {
			t.Errorf("privilege = %q", ai.Privilege)
		}
	}
	if !servers["rutgers"] || !servers["caltech"] {
		t.Errorf("servers = %v", servers)
	}

	// ACL filtering is enforced at each peer: an unknown user sees nothing.
	if apps := a.srv.Apps(context.Background(), "mallory"); len(apps) != 0 {
		t.Errorf("mallory sees %v", apps)
	}
}

func TestNamingBindingForProxies(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	as := n.attachApp(a, "wave", defaultUsers())
	waitFor(t, 2*time.Second, func() bool {
		_, err := n.naming.Resolve(as.AppID())
		return err == nil
	})
	ref, err := n.naming.Resolve(as.AppID())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Key != ProxyKey(as.AppID()) || ref.Addr != a.orb.Addr() {
		t.Errorf("naming ref = %v", ref)
	}
	// On close the binding disappears.
	as.Close()
	waitFor(t, 2*time.Second, func() bool {
		_, err := n.naming.Resolve(as.AppID())
		return err != nil
	})
}

// remoteSteeringTest exercises the full remote path in the given mode.
func remoteSteeringTest(t *testing.T, mode UpdateMode) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", mode) // host domain
	b := n.addDomain("caltech", mode) // client's local domain
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()
	appID := as.AppID()

	// Client logs in at caltech (their "closest" server) and connects to
	// the rutgers-hosted application.
	sess, err := b.srv.Login(context.Background(), "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	cap, err := b.srv.ConnectApp(context.Background(), sess, appID)
	if err != nil {
		t.Fatalf("remote connect: %v", err)
	}
	if cap.Priv.String() != "steer" {
		t.Errorf("remote privilege = %v", cap.Priv)
	}

	// Remote lock acquisition relays to the host server's lock table.
	granted, _, err := b.srv.LockOp(context.Background(), sess, true)
	if err != nil || !granted {
		t.Fatalf("remote lock: %v %v", granted, err)
	}
	if holder, held := a.srv.Locks().Holder(appID); !held || holder != sess.ClientID {
		t.Errorf("host lock table holder = %q, %v", holder, held)
	}
	if _, held := b.srv.Locks().Holder(appID); held {
		t.Error("lock state leaked to the remote server")
	}

	// Remote steering command.
	if _, err := b.srv.SubmitCommand(context.Background(), sess, "set_param", []wire.Param{
		{Key: "name", Value: "source_freq"}, {Key: "value", Value: "0.22"},
	}); err != nil {
		t.Fatalf("remote command: %v", err)
	}

	// Drive the application; the response must arrive at caltech.
	var resp *wire.Message
	waitFor(t, 5*time.Second, func() bool {
		as.RunPhase()
		for _, m := range sess.Buffer.Drain(0) {
			if m.Kind == wire.KindResponse && m.Op == "set_param" {
				resp = m
			}
		}
		return resp != nil
	})
	if v := as.Runtime().Params().MustGet("source_freq"); v != 0.22 {
		t.Errorf("remote steering did not land: %v", v)
	}

	// Periodic updates cross the substrate too.
	var sawUpdate bool
	waitFor(t, 5*time.Second, func() bool {
		as.RunPhase()
		for _, m := range sess.Buffer.Drain(0) {
			if m.Kind == wire.KindUpdate {
				sawUpdate = true
			}
		}
		return sawUpdate
	})

	// Release remotely.
	if _, _, err := b.srv.LockOp(context.Background(), sess, false); err != nil {
		t.Fatal(err)
	}
	if _, held := a.srv.Locks().Holder(appID); held {
		t.Error("remote release did not clear host lock")
	}
}

func TestRemoteSteeringPushMode(t *testing.T) { remoteSteeringTest(t, Push) }
func TestRemoteSteeringPollMode(t *testing.T) { remoteSteeringTest(t, Poll) }

func TestDistributedLockMutualExclusion(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()
	appID := as.AppID()

	// alice local at rutgers, alice2 remote at caltech contend.
	local, _ := a.srv.Login(context.Background(), "alice", "pw")
	remote, _ := b.srv.Login(context.Background(), "alice", "pw")
	if _, err := a.srv.ConnectApp(context.Background(), local, appID); err != nil {
		t.Fatal(err)
	}
	if _, err := b.srv.ConnectApp(context.Background(), remote, appID); err != nil {
		t.Fatal(err)
	}

	granted, _, _ := a.srv.LockOp(context.Background(), local, true)
	if !granted {
		t.Fatal("local lock denied")
	}
	granted, holder, err := b.srv.LockOp(context.Background(), remote, true)
	if err != nil {
		t.Fatal(err)
	}
	if granted {
		t.Fatal("lock granted to two clients across servers")
	}
	if holder != local.ClientID {
		t.Errorf("holder reported to remote = %q", holder)
	}
	// Remote steering without the lock is rejected AT THE HOST.
	_, err = b.srv.SubmitCommand(context.Background(), remote, "set_param", []wire.Param{
		{Key: "name", Value: "source_freq"}, {Key: "value", Value: "0.3"},
	})
	if err == nil {
		t.Error("remote steer without lock accepted")
	}
	// Hand over.
	a.srv.LockOp(context.Background(), local, false)
	if granted, _, _ := b.srv.LockOp(context.Background(), remote, true); !granted {
		t.Error("remote lock denied after local release")
	}
}

func TestCrossServerCollaboration(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()
	appID := as.AppID()

	aliceA, _ := a.srv.Login(context.Background(), "alice", "pw")
	bobB, _ := b.srv.Login(context.Background(), "bob", "pw")
	if _, err := a.srv.ConnectApp(context.Background(), aliceA, appID); err != nil {
		t.Fatal(err)
	}
	if _, err := b.srv.ConnectApp(context.Background(), bobB, appID); err != nil {
		t.Fatal(err)
	}

	// Chat from the remote member must reach the host domain's member.
	if err := b.srv.Chat(context.Background(), bobB, "hello from caltech"); err != nil {
		t.Fatal(err)
	}
	var gotChat bool
	waitFor(t, 5*time.Second, func() bool {
		for _, m := range aliceA.Buffer.Drain(0) {
			if m.Kind == wire.KindChat && m.Text == "hello from caltech" {
				gotChat = true
			}
		}
		return gotChat
	})

	// Chat from the host domain reaches the remote member via its relay.
	if err := a.srv.Chat(context.Background(), aliceA, "hello from rutgers"); err != nil {
		t.Fatal(err)
	}
	var gotBack bool
	waitFor(t, 5*time.Second, func() bool {
		for _, m := range bobB.Buffer.Drain(0) {
			if m.Kind == wire.KindChat && m.Text == "hello from rutgers" {
				gotBack = true
			}
		}
		return gotBack
	})

	// Whiteboard strokes recorded at both servers for latecomers.
	if err := b.srv.Whiteboard(context.Background(), bobB, []byte("stroke")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return a.srv.Hub().Group(appID).WhiteboardLen() == 1
	})
}

func TestControlChannelEvents(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	n.discoverAll()

	// A logged-in client at caltech hears about an app joining rutgers.
	sess, _ := b.srv.Login(context.Background(), "alice", "pw")
	n.attachApp(a, "wave", defaultUsers())
	var heard bool
	waitFor(t, 5*time.Second, func() bool {
		for _, m := range sess.Buffer.Drain(0) {
			if m.Kind == wire.KindEvent && m.Op == "app-registered" {
				heard = true
			}
		}
		return heard
	})
}

func TestRemoteUsers(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	n.attachApp(b, "wave", defaultUsers())
	n.discoverAll()
	b.srv.Login(context.Background(), "bob", "pw")

	users, err := a.sub.RemoteUsers(context.Background(), "caltech")
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 1 || users[0] != "bob" {
		t.Errorf("remote users = %v", users)
	}
	if _, err := a.sub.RemoteUsers(context.Background(), "nosuch"); err == nil {
		t.Error("unknown peer accepted")
	}
}

func TestRemotePrivilegeDenied(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()

	// eve has no ACL entry anywhere; connecting must fail with no access.
	b.srv.Auth().SetUserSecret("eve", "pw")
	sess, _ := b.srv.Login(context.Background(), "eve", "pw")
	if _, err := b.srv.ConnectApp(context.Background(), sess, as.AppID()); err == nil {
		t.Error("remote connect for unauthorized user succeeded")
	}
	// bob is monitor: connect fine, steer denied locally.
	bob, _ := b.srv.Login(context.Background(), "bob", "pw")
	if _, err := b.srv.ConnectApp(context.Background(), bob, as.AppID()); err != nil {
		t.Fatalf("bob connect: %v", err)
	}
	if _, err := b.srv.SubmitCommand(context.Background(), bob, "set_param", []wire.Param{
		{Key: "name", Value: "source_freq"}, {Key: "value", Value: "0.4"},
	}); err == nil {
		t.Error("monitor steer via substrate accepted")
	}
}

func TestUnsubscribeStopsTraffic(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()

	sess, _ := b.srv.Login(context.Background(), "alice", "pw")
	if _, err := b.srv.ConnectApp(context.Background(), sess, as.AppID()); err != nil {
		t.Fatal(err)
	}
	// Receive at least one update, then unsubscribe.
	waitFor(t, 5*time.Second, func() bool {
		as.RunPhase()
		return len(sess.Buffer.Drain(0)) > 0
	})
	if err := b.sub.Unsubscribe(as.AppID()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	sess.Buffer.Drain(0) // clear in-flight
	for i := 0; i < 10; i++ {
		as.RunPhase()
	}
	time.Sleep(100 * time.Millisecond)
	for _, m := range sess.Buffer.Drain(0) {
		if m.Kind == wire.KindUpdate {
			t.Error("update delivered after unsubscribe")
			break
		}
	}
}

// TestFederationChaos drives a three-domain federation with concurrent
// clients performing random operations while applications pump phases.
// It asserts liveness (no deadlock within the deadline) and the global
// mutual-exclusion invariant: every successful mutating command was
// issued by the lock holder of the moment, so the two contended counters
// never interleave within one client's read-modify-write. Midway through
// the run one domain is killed abruptly and later restarted: the
// survivors must detect the death, keep serving, and re-federate with the
// reborn domain.
func TestFederationChaos(t *testing.T) {
	n := newTestNet(t)
	domains := []*domain{
		n.addDomain("d0", Push),
		n.addDomain("d1", Push),
		n.addDomain("d2", Push),
	}
	apps := []*appproto.Session{
		n.attachApp(domains[0], "chaos-a", defaultUsers()),
		n.attachApp(domains[1], "chaos-b", defaultUsers()),
	}
	n.discoverAll()

	// Applications pump phases continuously.
	pumpCtx, stopPump := context.WithCancel(context.Background())
	defer stopPump()
	for _, as := range apps {
		as := as
		go func() {
			for pumpCtx.Err() == nil {
				if _, err := as.RunPhase(); err != nil {
					return
				}
			}
		}()
	}

	const clients = 6
	var wg sync.WaitGroup
	var steers atomic.Int64
	deadline := time.Now().Add(1500 * time.Millisecond)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(c)))
			d := domains[c%2] // only the surviving domains serve chaos clients
			sess, err := d.srv.Login(context.Background(), "alice", "pw")
			if err != nil {
				t.Errorf("client %d login: %v", c, err)
				return
			}
			appID := apps[c%len(apps)].AppID()
			if _, err := d.srv.ConnectApp(context.Background(), sess, appID); err != nil {
				t.Errorf("client %d connect: %v", c, err)
				return
			}
			for time.Now().Before(deadline) {
				switch r.Intn(6) {
				case 0: // try to steer under the lock
					granted, _, err := d.srv.LockOp(context.Background(), sess, true)
					if err != nil || !granted {
						continue
					}
					if _, err := d.srv.SubmitCommand(context.Background(), sess, "set_param", []wire.Param{
						{Key: "name", Value: "source_amp"},
						{Key: "value", Value: "1.5"},
					}); err == nil {
						steers.Add(1)
					}
					d.srv.LockOp(context.Background(), sess, false)
				case 1:
					d.srv.SubmitCommand(context.Background(), sess, "status", nil)
				case 2:
					d.srv.Chat(context.Background(), sess, "chaos")
				case 3:
					sess.Buffer.Drain(0)
				case 4:
					d.srv.Apps(context.Background(), "alice")
				case 5:
					d.srv.SubmitCommand(context.Background(), sess, "get_param", []wire.Param{{Key: "name", Value: "source_amp"}})
				}
			}
			d.srv.Logout(context.Background(), sess)
		}(c)
	}
	// Mid-run: kill d2 abruptly (no offer withdrawal — close the wire
	// first) while the chaos clients keep hammering d0 and d1.
	time.Sleep(400 * time.Millisecond)
	d2 := domains[2]
	d2.orb.Close()
	d2.srv.Close()
	d2.sub.Close()
	// Survivors detect the death: drive the failure detector until both
	// either opened the breaker or pruned the peer via discovery.
	sawDown := func(d *domain) bool {
		for _, ph := range d.sub.PeerHealth() {
			if ph.Peer == "d2" && (ph.State == "down" || ph.State == "probing") {
				return true
			}
		}
		for _, p := range d.sub.Peers() {
			if p == "d2" {
				return false
			}
		}
		return true // pruned entirely: also a detected death
	}
	waitFor(t, 10*time.Second, func() bool {
		domains[0].sub.CheckPeersNow()
		domains[1].sub.CheckPeersNow()
		return sawDown(domains[0]) && sawDown(domains[1])
	})

	// Restart d2 under the same name and re-federate.
	d2b := n.addDomain("d2", Push)
	n.discoverAll()

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("chaos clients deadlocked")
	}
	if steers.Load() == 0 {
		t.Error("no successful steering under contention")
	}
	// All locks released after every client logged out.
	for _, as := range apps {
		if holder, held := serverOf(domains, as.AppID()).Locks().Holder(as.AppID()); held {
			t.Errorf("lock on %s leaked to %s", as.AppID(), holder)
		}
	}

	// The reborn d2 participates end-to-end: a client there steers the
	// d0-hosted application through the re-formed federation.
	sess, err := d2b.srv.Login(context.Background(), "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2b.srv.ConnectApp(context.Background(), sess, apps[0].AppID()); err != nil {
		t.Fatalf("connect via reborn domain: %v", err)
	}
	waitFor(t, 10*time.Second, func() bool {
		granted, _, err := d2b.srv.LockOp(context.Background(), sess, true)
		return err == nil && granted
	})
	if _, err := d2b.srv.SubmitCommand(context.Background(), sess, "set_param", []wire.Param{
		{Key: "name", Value: "source_amp"},
		{Key: "value", Value: "2.0"},
	}); err != nil {
		t.Errorf("steer via reborn domain: %v", err)
	}
	d2b.srv.LockOp(context.Background(), sess, false)
	d2b.srv.Logout(context.Background(), sess)
}

func serverOf(domains []*domain, appID string) *server.Server {
	for _, d := range domains {
		if d.srv.Name() == server.ServerOfApp(appID) {
			return d.srv
		}
	}
	return nil
}

// TestLinkedTraderDiscovery runs two administrative domains with their
// own traders, linked CosTrading-style; substrates configured with a hop
// budget discover peers registered at the other trader.
func TestLinkedTraderDiscovery(t *testing.T) {
	mkTrader := func() (*orb.Trader, *orb.ORB) {
		o := orb.New()
		if err := o.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { o.Close() })
		tr := orb.NewTrader(orb.WithLinkORB(o))
		o.Register(orb.TraderKey, tr.Servant())
		o.Register(orb.NamingKey, orb.NewNaming().Servant())
		return tr, o
	}
	trA, orbA := mkTrader()
	trB, orbB := mkTrader()
	if err := trA.AddLink("b", orb.ObjRef{Addr: orbB.Addr(), Key: orb.TraderKey}); err != nil {
		t.Fatal(err)
	}
	if err := trB.AddLink("a", orb.ObjRef{Addr: orbA.Addr(), Key: orb.TraderKey}); err != nil {
		t.Fatal(err)
	}

	mkDomain := func(name string, traderORB *orb.ORB) *Substrate {
		srv, err := server.New(server.Config{Name: name, Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.ListenDaemon("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		o := orb.New()
		if err := o.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { o.Close() })
		sub, err := New(Config{
			Server: srv, ORB: o,
			TraderRef:    orb.ObjRef{Addr: traderORB.Addr(), Key: orb.TraderKey},
			DiscoverHops: 1,
			Logf:         func(string, ...any) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sub.Close)
		return sub
	}
	subA := mkDomain("alpha", orbA) // registers at trader A
	subB := mkDomain("beta", orbB)  // registers at trader B

	if err := subA.DiscoverPeers(); err != nil {
		t.Fatal(err)
	}
	if err := subB.DiscoverPeers(); err != nil {
		t.Fatal(err)
	}
	if peers := subA.Peers(); len(peers) != 1 || peers[0] != "beta" {
		t.Errorf("alpha peers across linked traders = %v", peers)
	}
	if peers := subB.Peers(); len(peers) != 1 || peers[0] != "alpha" {
		t.Errorf("beta peers across linked traders = %v", peers)
	}
}

// TestPeerFailureHandledCleanly kills the host domain abruptly and checks
// that the remote server degrades gracefully: remote operations fail with
// errors (never hang or panic), the failure detector opens the breaker so
// later operations fail fast with ErrPeerDown, and the dead peer's
// applications stay listed — marked unavailable — from the cache.
func TestPeerFailureHandledCleanly(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()
	appID := as.AppID()

	sess, _ := b.srv.Login(context.Background(), "alice", "pw")
	if _, err := b.srv.ConnectApp(context.Background(), sess, appID); err != nil {
		t.Fatal(err)
	}
	// Populate b's remote-app cache while the host is alive.
	if apps := b.srv.Apps(context.Background(), "alice"); len(apps) != 1 || apps[0].Unavailable {
		t.Fatalf("pre-failure apps = %v", apps)
	}

	// Abrupt death: close the host's ORB and server without withdrawing.
	as.Close()
	a.sub.Close()
	a.orb.Close()
	a.srv.Close()
	b.orb.DropConn(a.orb.Addr())

	// Remote operations fail with errors, promptly.
	done := make(chan error, 1)
	go func() {
		_, err := b.srv.SubmitCommand(context.Background(), sess, "status", nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("command to dead peer succeeded")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("command to dead peer hung")
	}
	if _, _, err := b.srv.LockOp(context.Background(), sess, true); err == nil {
		t.Error("lock relay to dead peer succeeded")
	}

	// Drive the failure detector to the down threshold; dials to the
	// closed listener fail immediately, so this is fast and deterministic.
	for i := 0; i < DefaultDownAfter; i++ {
		b.sub.CheckPeersNow()
	}
	if st := b.sub.health.state("rutgers"); st != PeerDown {
		t.Fatalf("peer state after %d failed probes = %v", DefaultDownAfter, st)
	}

	// Breaker open: operations fail fast with the typed error, well under
	// the RPC timeout.
	start := time.Now()
	_, err := b.srv.SubmitCommand(context.Background(), sess, "status", nil)
	if !errors.Is(err, ErrPeerDown) {
		t.Errorf("command after breaker open: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("breaker-open command took %v, want fast-fail", elapsed)
	}

	// The dead peer's applications are still listed, marked unavailable.
	apps := b.srv.Apps(context.Background(), "alice")
	if len(apps) != 1 || !apps[0].Unavailable || apps[0].ID != appID {
		t.Errorf("apps after peer death = %+v", apps)
	}

	// Stats surface the breaker state.
	ph := b.sub.PeerHealth()
	if len(ph) != 1 || ph[0].Peer != "rutgers" || ph[0].State != "down" || ph[0].BreakerOpens == 0 {
		t.Errorf("peer health = %+v", ph)
	}
}

// TestResourcePolicyThrottlesPeer exercises §6.3's access policies: a
// peer exceeding its request-rate budget is denied at the host with a
// RESOURCE_POLICY error, and its consumption is accounted.
func TestResourcePolicyThrottlesPeer(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()
	appID := as.AppID()

	// rutgers (the host) restricts caltech to 2 requests with no refill.
	a.sub.Accounting().SetPolicy("caltech", policy.Policy{RequestsPerSec: 0.0001, RequestBurst: 2})

	sess, _ := b.srv.Login(context.Background(), "alice", "pw")
	if _, err := b.srv.ConnectApp(context.Background(), sess, appID); err != nil {
		t.Fatal(err)
	}
	granted, _, err := b.srv.LockOp(context.Background(), sess, true)
	if err != nil || !granted {
		t.Fatalf("first lock consumed budget unexpectedly: %v %v", granted, err)
	}
	if _, _, err := b.srv.LockOp(context.Background(), sess, false); err != nil {
		t.Fatal(err)
	}
	// Third relayed request exceeds the burst of 2.
	if _, _, err := b.srv.LockOp(context.Background(), sess, true); err == nil {
		t.Fatal("request over policy budget was admitted")
	}
	usage := a.sub.Accounting().Usage("caltech")
	if usage.Requests != 2 || usage.Denied == 0 {
		t.Errorf("usage = %+v", usage)
	}
}

// TestCollabMeterExemptionValidated pins the membership exemption of the
// collab relay path: genuine payload-free membership bookkeeping bypasses
// the access-policy meter even with the peer's budget exhausted, while a
// message that merely tags bulk data with a membership kind is metered
// and denied.
func TestCollabMeterExemptionValidated(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()
	appID := as.AppID()

	// A byte budget too small for any bulk payload.
	a.sub.Accounting().SetPolicy("caltech", policy.Policy{BytesPerSec: 1, ByteBurst: 16})

	proxy := orb.ObjRef{Addr: a.orb.Addr(), Key: ProxyKey(appID)}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	join := &wire.Message{Kind: wire.KindJoin, App: appID, Client: "caltech/c1"}
	for i := 0; i < 3; i++ {
		if err := b.orb.Invoke(ctx, proxy, "collab",
			collabReq{Msg: join, From: "caltech"}, nil); err != nil {
			t.Fatalf("genuine membership message hit the meter: %v", err)
		}
	}

	forged := &wire.Message{Kind: wire.KindJoin, App: appID, Client: "caltech/c1",
		Data: make([]byte, 4096)}
	err := b.orb.Invoke(ctx, proxy, "collab", collabReq{Msg: forged, From: "caltech"}, nil)
	if err == nil {
		t.Fatal("bulk data tagged as a join bypassed the meter")
	}
	var re *orb.RemoteError
	if !errors.As(err, &re) || re.Code != CodePolicy {
		t.Errorf("forged join error = %v, want code %s", err, CodePolicy)
	}
}

func TestPollModeFiltersForeignResponses(t *testing.T) {
	n := newTestNet(t)
	a := n.addDomain("rutgers", Poll)
	b := n.addDomain("caltech", Poll)
	c := n.addDomain("utexas", Poll)
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()
	appID := as.AppID()

	sb, _ := b.srv.Login(context.Background(), "alice", "pw")
	sc, _ := c.srv.Login(context.Background(), "bob", "pw")
	if _, err := b.srv.ConnectApp(context.Background(), sb, appID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.srv.ConnectApp(context.Background(), sc, appID); err != nil {
		t.Fatal(err)
	}
	if granted, _, _ := b.srv.LockOp(context.Background(), sb, true); !granted {
		t.Fatal("lock")
	}
	if _, err := b.srv.SubmitCommand(context.Background(), sb, "set_param", []wire.Param{
		{Key: "name", Value: "source_freq"}, {Key: "value", Value: "0.19"},
	}); err != nil {
		t.Fatal(err)
	}
	var got bool
	waitFor(t, 5*time.Second, func() bool {
		as.RunPhase()
		for _, m := range sb.Buffer.Drain(0) {
			if m.Kind == wire.KindResponse && m.Op == "set_param" {
				got = true
			}
		}
		return got
	})
	// utexas's client must not see alice's response (responses are scoped
	// to the requester's server; updates are shared).
	for _, m := range sc.Buffer.Drain(0) {
		if m.Kind == wire.KindResponse && m.Client == sb.ClientID {
			t.Error("foreign response leaked through poll filter")
		}
	}
}

// TestDirCacheSingleFlightAndStates walks one cache entry through every
// state deterministically: single-flight miss dedup, fresh hit,
// unavailable-marked serve, event invalidation forcing a refetch, failed
// fetch degrading to the last good listing, and stale
// serve-while-revalidate past the TTL.
func TestDirCacheSingleFlightAndStates(t *testing.T) {
	c := newDirCache("unit", 50*time.Millisecond)
	apps := []server.AppInfo{{ID: "unit#1"}}

	// Miss: the first caller leads the flight, the second joins it.
	p1 := c.plan("peer", "alice", false)
	if p1.state != dirFetch || !p1.lead {
		t.Fatalf("first plan = %+v, want fetch leader", p1)
	}
	p2 := c.plan("peer", "alice", false)
	if p2.state != dirJoin || p2.lead {
		t.Fatalf("second plan = %+v, want join follower", p2)
	}
	resolved := make(chan []server.AppInfo, 1)
	go func() {
		<-p2.flight
		got, err := c.resolve("peer", "alice")
		if err != nil {
			t.Errorf("follower resolve: %v", err)
		}
		resolved <- got
	}()
	c.complete("peer", "alice", apps, nil)
	if got := <-resolved; len(got) != 1 || got[0].ID != "unit#1" {
		t.Fatalf("follower resolved %+v", got)
	}

	// Fresh hit within the TTL.
	if p := c.plan("peer", "alice", false); p.state != dirFresh || len(p.apps) != 1 {
		t.Fatalf("fresh plan = %+v", p)
	}
	// Breaker open: the same data, every application marked unavailable.
	if p := c.plan("peer", "alice", true); p.state != dirUnavailable || !p.apps[0].Unavailable {
		t.Fatalf("down plan = %+v", p)
	}
	// An event invalidation forces a synchronous coherent refetch.
	c.invalidatePeer("peer", true)
	p3 := c.plan("peer", "alice", false)
	if p3.state != dirFetch || !p3.lead {
		t.Fatalf("post-invalidation plan = %+v, want fetch leader", p3)
	}
	// A failed refetch keeps the old data as the degraded fallback.
	c.complete("peer", "alice", nil, errors.New("boom"))
	if got, err := c.resolve("peer", "alice"); err == nil || len(got) != 1 || !got[0].Unavailable {
		t.Fatalf("failed-fetch resolve = %+v, %v", got, err)
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 3 || st.Coalesced != 1 ||
		st.UnavailableServes != 1 || st.EventInvalidations != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Past the TTL an entry is served stale while one leader revalidates.
	c.complete("peer", "alice", apps, nil)
	time.Sleep(60 * time.Millisecond)
	p4 := c.plan("peer", "alice", false)
	if p4.state != dirStale || !p4.lead || len(p4.apps) != 1 {
		t.Fatalf("expired plan = %+v, want stale leader", p4)
	}
	if p := c.plan("peer", "alice", false); p.state != dirStale || p.lead {
		t.Fatalf("second expired plan = %+v, want stale non-leader", p)
	}
	c.complete("peer", "alice", apps, nil)
	if p := c.plan("peer", "alice", false); p.state != dirFresh {
		t.Fatalf("revalidated plan = %+v, want fresh", p)
	}
}

// TestDirectoryChaosConcurrentListings hammers the listing fan-out from
// several goroutines while the application population churns (event
// invalidations land mid-round) and one peer dies abruptly and is reborn
// under the same name. Run with -race: the invariant is liveness (every
// listing completes), degraded marking while the peer is down, and
// coherent recovery after rebirth.
func TestDirectoryChaosConcurrentListings(t *testing.T) {
	n := newTestNet(t)
	d0 := n.addDomain("d0", Push)
	d1 := n.addDomain("d1", Push)
	d2 := n.addDomain("d2", Push)
	n.attachApp(d1, "stable-1", defaultUsers())
	n.attachApp(d2, "stable-2", defaultUsers())
	n.discoverAll()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var listings atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				d0.sub.RemoteApps(ctx, "alice")
				if i%4 == g {
					d0.sub.RemoteUsers(ctx, "")
				}
				cancel()
				listings.Add(1)
			}
		}(g)
	}
	// Churn applications at d1 so app-registered/app-closed control events
	// invalidate d0's cache while the listing goroutines are mid-round.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rt, err := app.NewRuntime(app.Config{
				Name: "churn", Kernel: app.NewSeismic1D(16), ComputeSteps: 1,
				Users: defaultUsers(),
			})
			if err != nil {
				t.Error(err)
				return
			}
			as, err := appproto.Dial(context.Background(), d1.srv.Daemon().Addr(), rt)
			if err != nil {
				t.Error(err)
				return
			}
			deadline := time.Now().Add(2 * time.Second)
			for len(d1.srv.LocalAppIDs()) < 2 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			as.Close()
			deadline = time.Now().Add(2 * time.Second)
			for len(d1.srv.LocalAppIDs()) > 1 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Let the chaos build, then kill d2 abruptly — wire first, so its
	// trader offer lingers and survivors keep it as a known-but-dead peer.
	time.Sleep(300 * time.Millisecond)
	d2.orb.Close()
	d2.srv.Close()
	d2.sub.Close()
	waitFor(t, 10*time.Second, func() bool {
		d0.sub.CheckPeersNow()
		for _, ph := range d0.sub.PeerHealth() {
			if ph.Peer == "d2" && (ph.State == "down" || ph.State == "probing") {
				return true
			}
		}
		return false
	})
	// Listings keep completing, serving d2's last good listing marked
	// unavailable instead of hanging or silently dropping it.
	waitFor(t, 10*time.Second, func() bool {
		for _, a := range d0.sub.RemoteApps(context.Background(), "alice") {
			if server.ServerOfApp(a.ID) == "d2" && a.Unavailable {
				return true
			}
		}
		return false
	})

	// A reborn d2 re-federates under the same name; its new application
	// becomes visible and available through the invalidated cache.
	d2b := n.addDomain("d2", Push)
	reborn := n.attachApp(d2b, "reborn", defaultUsers())
	n.discoverAll()
	waitFor(t, 10*time.Second, func() bool {
		d0.sub.CheckPeersNow()
		for _, a := range d0.sub.RemoteApps(context.Background(), "alice") {
			if a.ID == reborn.AppID() && !a.Unavailable {
				return true
			}
		}
		return false
	})

	close(stop)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("directory chaos goroutines deadlocked")
	}
	st := d0.sub.DirectoryStats()
	if listings.Load() == 0 || st.Hits == 0 || st.Misses == 0 {
		t.Errorf("chaos exercised too little: listings=%d stats=%+v", listings.Load(), st)
	}
	if st.EventInvalidations == 0 {
		t.Errorf("app churn never invalidated the cache: %+v", st)
	}
	if st.FanoutRounds == 0 || st.FanoutCalls < st.FanoutRounds {
		t.Errorf("fan-out counters implausible: %+v", st)
	}
}
