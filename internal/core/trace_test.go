package core

import (
	"context"
	"testing"
	"time"

	"discover/internal/telemetry"
	"discover/internal/wire"
)

// spanByHop indexes a trace's spans by hop kind.
func spanByHop(rec telemetry.TraceRecord) map[string][]telemetry.Span {
	out := make(map[string][]telemetry.Span)
	for _, sp := range rec.Spans {
		out[sp.Hop] = append(out[sp.Hop], sp)
	}
	return out
}

// TestTracePropagationAcrossFederation checks that a trace minted at the
// edge domain rides the ORB wire trailer to the host domain and back: the
// finished record must contain the edge/queue/rpc hops recorded locally
// plus the servant hop recorded at the host, tagged with the host's ORB
// address.
func TestTracePropagationAcrossFederation(t *testing.T) {
	telemetry.Reset()
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push) // host
	b := n.addDomain("caltech", Push) // edge
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()

	sess, err := b.srv.Login(context.Background(), "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.srv.ConnectApp(context.Background(), sess, as.AppID()); err != nil {
		t.Fatal(err)
	}

	tr := telemetry.Default().Start("command status")
	ctx := telemetry.WithTrace(context.Background(), tr)
	if _, err := b.srv.SubmitCommand(ctx, sess, "status", nil); err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	rec, ok := telemetry.Default().Get(tr.ID())
	if !ok {
		t.Fatal("finished trace not found in ring")
	}
	hops := spanByHop(rec)
	for _, h := range []string{telemetry.HopEdge, telemetry.HopQueue, telemetry.HopRPC, telemetry.HopServant} {
		if len(hops[h]) == 0 {
			t.Fatalf("trace lacks %s span: %+v", h, rec.Spans)
		}
	}
	if loc := hops[telemetry.HopServant][0].Loc; loc != a.orb.Addr() {
		t.Errorf("servant span Loc = %q, want host ORB %q", loc, a.orb.Addr())
	}
	if peer := hops[telemetry.HopRPC][0].Peer; peer != a.orb.Addr() {
		t.Errorf("rpc span Peer = %q, want host ORB %q", peer, a.orb.Addr())
	}
	if loc := hops[telemetry.HopEdge][0].Loc; loc != "caltech" {
		t.Errorf("edge span Loc = %q, want caltech", loc)
	}
	// The rpc span excludes the echoed servant time, so the hop durations
	// must not exceed the trace total.
	var sum int64
	for _, sp := range rec.Spans {
		sum += sp.DurNanos
	}
	if sum > rec.TotalNanos+int64(time.Millisecond) {
		t.Errorf("span sum %d exceeds total %d", sum, rec.TotalNanos)
	}
}

// TestTraceLegacyPeerFallback checks interop with a peer that does not
// speak the trace trailer: the reply carries no echo, so the rpc span
// stays unsplit (servant time folded in) and no servant span appears —
// but the invocation itself still succeeds.
func TestTraceLegacyPeerFallback(t *testing.T) {
	telemetry.Reset()
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()

	// The host drops trace trailers from its replies, emulating a peer
	// built before the telemetry wire extension.
	a.orb.SetWireTrace(false)

	sess, err := b.srv.Login(context.Background(), "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.srv.ConnectApp(context.Background(), sess, as.AppID()); err != nil {
		t.Fatal(err)
	}

	tr := telemetry.Default().Start("command status")
	ctx := telemetry.WithTrace(context.Background(), tr)
	if _, err := b.srv.SubmitCommand(ctx, sess, "status", nil); err != nil {
		t.Fatalf("command against legacy peer: %v", err)
	}
	tr.Finish()

	rec, ok := telemetry.Default().Get(tr.ID())
	if !ok {
		t.Fatal("finished trace not found in ring")
	}
	hops := spanByHop(rec)
	if len(hops[telemetry.HopServant]) != 0 {
		t.Errorf("legacy peer produced a servant span: %+v", hops[telemetry.HopServant])
	}
	for _, h := range []string{telemetry.HopEdge, telemetry.HopQueue, telemetry.HopRPC} {
		if len(hops[h]) == 0 {
			t.Errorf("trace lacks %s span despite legacy peer", h)
		}
	}
}

// TestRelayHistogramsPopulated checks that the push relay records flush
// and queue-wait latencies as traffic flows to a subscribed peer.
func TestRelayHistogramsPopulated(t *testing.T) {
	telemetry.Reset()
	n := newTestNet(t)
	a := n.addDomain("rutgers", Push)
	b := n.addDomain("caltech", Push)
	as := n.attachApp(a, "wave", defaultUsers())
	n.discoverAll()

	sess, err := b.srv.Login(context.Background(), "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.srv.ConnectApp(context.Background(), sess, as.AppID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		as.RunPhase()
		for _, m := range sess.Buffer.Drain(0) {
			if m.Kind == wire.KindUpdate {
				return true
			}
		}
		return false
	})

	flush := telemetry.GetHistogram("discover_relay_flush_seconds", "peer", "caltech")
	wait := telemetry.GetHistogram("discover_relay_queue_wait_seconds", "peer", "caltech")
	if flush.Count() == 0 {
		t.Error("relay flush histogram empty after push traffic")
	}
	if wait.Count() == 0 {
		t.Error("relay queue-wait histogram empty after push traffic")
	}
}
