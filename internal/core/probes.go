package core

import (
	"context"
	"sync"
	"time"

	"discover/internal/orb"
	"discover/internal/server"
	"discover/internal/wire"
)

// heartbeatLoop drives the failure detector: a periodic synchronous check
// round over every known peer. The same round doubles as the recovery
// prober for peers whose breaker is open.
func (s *Substrate) heartbeatLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.CheckPeersNow()
		}
	}
}

// CheckPeersNow runs one heartbeat/probe round over every known peer and
// returns when all outcomes are recorded. Exported so tests and the chaos
// experiment can drive the detector deterministically instead of sleeping
// through heartbeat periods.
func (s *Substrate) CheckPeersNow() {
	peers := s.peerList()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p peerInfo) {
			defer wg.Done()
			s.probePeer(p)
		}(p)
	}
	wg.Wait()
}

// probePeer performs one detector step for one peer: a heartbeat for a
// live peer, a recovery probe for a down one.
func (s *Substrate) probePeer(p peerInfo) {
	switch s.health.state(p.name) {
	case PeerProbing:
		return // a probe is already in flight
	case PeerDown:
		if !s.health.beginProbe(p.name) {
			return
		}
		rtt, err := s.pingPeer(p)
		alive := err == nil || !orb.IsPeerFailure(err)
		s.health.finishProbe(p.name, alive, err)
		if alive && err == nil {
			s.health.heartbeatOK(p.name, p.addr, rtt)
		}
	default:
		rtt, err := s.pingPeer(p)
		if err == nil || !orb.IsPeerFailure(err) {
			s.health.heartbeatOK(p.name, p.addr, rtt)
		} else {
			s.health.reportFailure(p.name, p.addr, err)
		}
	}
}

// pingPeer invokes the peer's two-way ping under the probe budget. Any
// reply — even an error a live servant raised — proves liveness.
func (s *Substrate) pingPeer(p peerInfo) (time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ProbeTimeout)
	defer cancel()
	start := time.Now()
	var resp pingResp
	err := s.orb.Invoke(ctx, p.serverRef(), "ping", pingReq{}, &resp)
	return time.Since(start), err
}

// appsHostedAt lists the subscribed applications hosted at one peer — the
// applications whose availability that peer's death changes here.
func (s *Substrate) appsHostedAt(peer string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	for appID := range s.subs {
		if server.ServerOfApp(appID) == peer {
			seen[appID] = true
		}
	}
	for appID := range s.polls {
		if server.ServerOfApp(appID) == peer {
			seen[appID] = true
		}
	}
	out := make([]string, 0, len(seen))
	for appID := range seen {
		out = append(out, appID)
	}
	return out
}

// peerWentDown is the healthTable's onDown callback: degrade rather than
// drop. Pending relayed lock waits owned by the dead peer's clients fail
// immediately, local clients get peer-down and per-application
// availability events in their FIFO buffers, and the pooled connection is
// dropped so a later probe redials.
func (s *Substrate) peerWentDown(name, addr string) {
	s.cfg.Logf("core %s: peer %s declared down (breaker open)", s.srv.Name(), name)
	if addr != "" {
		s.orb.DropConn(addr)
	}
	if s.gossip != nil {
		// Feed the verdict into the epidemic membership: the gossip layer
		// rumors it, and its recovery probes (plus direct contact) will
		// refute it if the breaker fired on a transient.
		s.gossip.ObserveDead(name)
	}
	if apps := s.srv.PeerServerDown(name); len(apps) > 0 {
		s.cfg.Logf("core %s: released lock state of %s's clients for %v", s.srv.Name(), name, apps)
	}
	ev := wire.NewEvent(s.srv.Name(), "peer-down", name)
	s.srv.HandleControlEvent(ev)
	for _, appID := range s.appsHostedAt(name) {
		aev := wire.NewEvent(s.srv.Name(), "app-unavailable", appID)
		aev.App = appID
		s.srv.HandleControlEvent(aev)
	}
}

// peerRecovered is the healthTable's onRecovered callback: reassert this
// server's push subscriptions at the recovered host (its relay table may
// be gone if it restarted) and tell local clients the peer is back.
func (s *Substrate) peerRecovered(name, addr string) {
	s.cfg.Logf("core %s: peer %s recovered (breaker closed)", s.srv.Name(), name)
	// Anything the directory cached for this peer predates the outage
	// (the peer may even have restarted with different applications):
	// drop its freshness so the next listing refetches, while the data
	// keeps backing a degraded serve if the recovery proves short-lived.
	s.dir.invalidatePeer(name, false)
	s.reassertSubscriptions(name)
	ev := wire.NewEvent(s.srv.Name(), "peer-recovered", name)
	s.srv.HandleControlEvent(ev)
	for _, appID := range s.appsHostedAt(name) {
		aev := wire.NewEvent(s.srv.Name(), "app-available", appID)
		aev.App = appID
		s.srv.HandleControlEvent(aev)
	}
}
