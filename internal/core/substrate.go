package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"discover/internal/gossip"
	"discover/internal/orb"
	"discover/internal/policy"
	"discover/internal/server"
	"discover/internal/telemetry"
	"discover/internal/wire"
)

// UpdateMode selects how group traffic crosses servers.
type UpdateMode int

const (
	// Push delivers host-side group messages to subscribed peers over the
	// control channel as they happen (one message per peer server).
	Push UpdateMode = iota
	// Poll has the subscribing server's CorbaProxy stubs poll the host
	// periodically — the mode the paper's prototype used.
	Poll
)

// Config wires a Substrate to its server and discovery services.
type Config struct {
	Server        *server.Server
	ORB           *orb.ORB   // must already be listening
	TraderRef     orb.ObjRef // the shared trader service
	NamingRef     orb.ObjRef // the shared naming service (optional)
	Props         map[string]string
	OfferTTL      time.Duration // trader lease (default 60s)
	Mode          UpdateMode
	RelayBatch    int                // max messages per push invocation (default 32; 1 disables batching)
	PollInterval  time.Duration      // poll mode update interval (default 100ms)
	DiscoverEvery time.Duration      // peer re-discovery period (default 5s)
	DiscoverHops  int                // trader links to follow during discovery (default 0)
	RPCTimeout    time.Duration      // per-invocation budget (default 10s)
	Accounting    *policy.Accountant // per-peer resource policies (§6.3); nil = metering only
	Logf          func(format string, args ...any)

	// Failure detection (see health.go). A dead peer is detected after
	// DownAfter consecutive peer-failure outcomes — from regular traffic
	// or from the heartbeat prober, whichever accumulates them first —
	// after which operations against it fail fast with ErrPeerDown until
	// a recovery probe succeeds.
	DialTimeout    time.Duration // TCP connect budget, below RPCTimeout (default 2s)
	HeartbeatEvery time.Duration // control-channel heartbeat period (default 2s)
	ProbeTimeout   time.Duration // heartbeat/recovery probe budget (default DialTimeout)
	SuspectAfter   int           // consecutive failures before suspect (default 1)
	DownAfter      int           // consecutive failures before down (default 3)

	// Directory fan-out and caching (see fanout.go, dircache.go).
	FanoutWorkers int           // max concurrent peers per scatter-gather round (default 16)
	DirCacheTTL   time.Duration // directory cache freshness window (default 2s; < 0 disables caching)

	// Epidemic federation directory (see gossiplink.go and
	// internal/gossip). When enabled, RemoteApps / RemoteUsers("") are
	// served from the locally converged replica with zero ORB invocations
	// per listing; the scatter-gather fan-out remains only as the
	// cold-start/fallback path, and app lifecycle events spread
	// epidemically instead of the O(peers) broadcast.
	GossipEnabled bool
	GossipPeriod  time.Duration // round period (default 1s; < 0: rounds driven via GossipNow)
	GossipFanout  int           // peers contacted per round (default 3)
	GossipTimeout time.Duration // per-exchange RPC budget (default 2s)
	// GossipRand seeds gossip's peer selection and jitter. Under netsim
	// pass Network.DeterministicRand so simulated runs are reproducible;
	// nil uses a time-seeded source.
	GossipRand *rand.Rand
}

// Substrate is the per-server middleware endpoint. Create it with New,
// then Start it; it registers the servants, exports the trader offer and
// begins discovery.
type Substrate struct {
	cfg    Config
	srv    *server.Server
	orb    *orb.ORB
	trader *orb.TraderClient
	naming *orb.NamingClient
	acct   *policy.Accountant

	health *healthTable
	dir    *dirCache    // event-coherent directory cache (listing path)
	gossip *gossip.Node // epidemic directory replica (nil unless Config.GossipEnabled)

	fanWorkers atomic.Int64  // scatter-gather concurrency bound (Config.FanoutWorkers)
	fanRounds  atomic.Uint64 // scatter-gather rounds issued
	fanCalls   atomic.Uint64 // per-peer calls issued across all rounds

	// Listing-path split: served from the gossip replica (zero ORB
	// invocations) vs the scatter-gather cold-start/fallback path.
	gossipServed dirCounter
	fanoutServed dirCounter

	// Collaboration-log anti-entropy counters (DESIGN §4l).
	collabSyncs   *telemetry.Counter // exchanges completed against a host
	collabSyncOps *telemetry.Counter // ops transferred by those exchanges

	mu      sync.Mutex
	peers   map[string]peerInfo     // by server name
	relays  map[string]*relaySender // by peer name (host side, push mode)
	polls   map[string]*poller      // by app id (subscriber side, poll mode)
	subs    map[string]bool         // app ids subscribed (push mode)
	offerID string
	closed  bool

	wg   sync.WaitGroup
	stop chan struct{}
}

type peerInfo struct {
	name string
	addr string
}

func (p peerInfo) serverRef() orb.ObjRef  { return orb.ObjRef{Addr: p.addr, Key: ServerKey} }
func (p peerInfo) controlRef() orb.ObjRef { return orb.ObjRef{Addr: p.addr, Key: ControlKey} }

// New creates a substrate. Call Start to go live.
func New(cfg Config) (*Substrate, error) {
	if cfg.Server == nil || cfg.ORB == nil {
		return nil, fmt.Errorf("core: config needs Server and ORB")
	}
	if cfg.ORB.Addr() == "" {
		return nil, fmt.Errorf("core: ORB must be listening before the substrate starts")
	}
	if cfg.OfferTTL <= 0 {
		cfg.OfferTTL = 60 * time.Second
	}
	if cfg.RelayBatch <= 0 {
		cfg.RelayBatch = DefaultRelayBatch
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Millisecond
	}
	if cfg.DiscoverEvery <= 0 {
		cfg.DiscoverEvery = 5 * time.Second
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 10 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.DialTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Accounting == nil {
		cfg.Accounting = policy.NewAccountant()
	}
	if cfg.FanoutWorkers <= 0 {
		cfg.FanoutWorkers = DefaultFanoutWorkers
	}
	if cfg.GossipTimeout <= 0 {
		cfg.GossipTimeout = gossip.DefaultTimeout
	}
	cfg.ORB.SetDialTimeout(cfg.DialTimeout)
	s := &Substrate{
		cfg:    cfg,
		srv:    cfg.Server,
		orb:    cfg.ORB,
		acct:   cfg.Accounting,
		health: newHealthTable(cfg.SuspectAfter, cfg.DownAfter),
		dir:    newDirCache(cfg.Server.Name(), cfg.DirCacheTTL),
		peers:  make(map[string]peerInfo),
		relays: make(map[string]*relaySender),
		polls:  make(map[string]*poller),
		subs:   make(map[string]bool),
		stop:   make(chan struct{}),
	}
	s.fanWorkers.Store(int64(cfg.FanoutWorkers))
	s.gossipServed.metric = telemetry.GetCounter("discover_listings_gossip_served_total", "server", cfg.Server.Name())
	s.fanoutServed.metric = telemetry.GetCounter("discover_listings_fanout_served_total", "server", cfg.Server.Name())
	s.collabSyncs = telemetry.GetCounter("discover_collab_syncs_total", "server", cfg.Server.Name())
	s.collabSyncOps = telemetry.GetCounter("discover_collab_sync_ops_total", "server", cfg.Server.Name())
	s.health.onDown = s.peerWentDown
	s.health.onRecovered = s.peerRecovered
	if cfg.GossipEnabled {
		s.initGossip()
	}
	if !cfg.TraderRef.IsZero() {
		s.trader = orb.NewTraderClient(cfg.ORB, cfg.TraderRef)
	}
	if !cfg.NamingRef.IsZero() {
		s.naming = orb.NewNamingClient(cfg.ORB, cfg.NamingRef)
	}
	return s, nil
}

// Start registers servants, exports the trader offer, attaches to the
// server as its Federation, and begins discovery and lease refresh.
func (s *Substrate) Start() error {
	s.registerServants()
	if s.gossip != nil {
		s.orb.Register(GossipKey, s.gossipServant())
	}
	s.srv.SetFederation(s)

	if s.trader != nil {
		props := map[string]string{
			"name": s.srv.Name(),
			"addr": s.orb.Addr(),
		}
		for k, v := range s.cfg.Props {
			props[k] = v
		}
		ctx, cancel := s.rpcCtx()
		defer cancel()
		id, err := s.trader.Export(ctx, orb.DiscoverServiceType,
			orb.ObjRef{Addr: s.orb.Addr(), Key: ServerKey}, props, s.cfg.OfferTTL)
		if err != nil {
			return fmt.Errorf("core: exporting trader offer: %w", err)
		}
		s.mu.Lock()
		s.offerID = id
		s.mu.Unlock()

		s.wg.Add(1)
		go s.maintenanceLoop()
		if err := s.DiscoverPeers(); err != nil {
			s.cfg.Logf("core %s: initial discovery: %v", s.srv.Name(), err)
		}
	}
	s.wg.Add(1)
	go s.heartbeatLoop()
	if s.gossip != nil {
		s.gossip.Start()
	}
	return nil
}

// Close withdraws the trader offer and stops background work.
func (s *Substrate) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	offerID := s.offerID
	for _, r := range s.relays {
		r.close()
	}
	for _, p := range s.polls {
		p.close()
	}
	s.mu.Unlock()
	close(s.stop)
	if s.gossip != nil {
		s.gossip.Stop()
	}
	s.wg.Wait()
	if s.trader != nil && offerID != "" {
		ctx, cancel := s.rpcCtx()
		defer cancel()
		s.trader.Withdraw(ctx, offerID)
	}
}

func (s *Substrate) rpcCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), s.cfg.RPCTimeout)
}

// boundCtx derives the per-invocation budget from the caller's context —
// so a client request's deadline (and its telemetry trace) propagates
// into the RPC — falling back to a detached context for background work.
func (s *Substrate) boundCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithTimeout(ctx, s.cfg.RPCTimeout)
}

// goTracked runs fn on a goroutine tracked by the substrate's WaitGroup,
// unless the substrate is closed. The closed check and the Add happen
// under the same lock Close uses before Wait, so Add can never race with
// Wait — the servant callbacks (application lifecycle events arriving
// during teardown) would otherwise trigger exactly that.
func (s *Substrate) goTracked(fn func()) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		fn()
	}()
	return true
}

// maintenanceLoop refreshes the trader lease and re-discovers peers.
func (s *Substrate) maintenanceLoop() {
	defer s.wg.Done()
	refresh := time.NewTicker(s.cfg.OfferTTL / 2)
	discover := time.NewTicker(s.cfg.DiscoverEvery)
	defer refresh.Stop()
	defer discover.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-refresh.C:
			s.mu.Lock()
			id := s.offerID
			s.mu.Unlock()
			ctx, cancel := s.rpcCtx()
			if err := s.trader.Refresh(ctx, id, s.cfg.OfferTTL); err != nil {
				s.cfg.Logf("core %s: offer refresh: %v", s.srv.Name(), err)
			}
			cancel()
		case <-discover.C:
			if err := s.DiscoverPeers(); err != nil {
				s.cfg.Logf("core %s: discovery: %v", s.srv.Name(), err)
			}
			s.reassertSubscriptions("")
		}
	}
}

// reassertSubscriptions re-sends push subscriptions so that a host server
// that restarted (losing its relay table) resumes pushing to us. The
// subscribe operation is idempotent at the host. A non-empty peer limits
// the pass to applications hosted there (recovery reassertion).
func (s *Substrate) reassertSubscriptions(peer string) {
	if s.cfg.Mode != Push {
		return
	}
	s.mu.Lock()
	apps := make([]string, 0, len(s.subs))
	for appID := range s.subs {
		if peer == "" || server.ServerOfApp(appID) == peer {
			apps = append(apps, appID)
		}
	}
	s.mu.Unlock()
	for _, appID := range apps {
		p, err := s.peerFor(appID)
		if err != nil {
			continue // host currently unknown; discovery will bring it back
		}
		err = s.invokePeer(nil, p, p.serverRef(), "subscribe", subscribeReq{
			App: appID, Peer: s.srv.Name(), PeerAddr: s.orb.Addr(),
		}, nil)
		if err != nil {
			s.cfg.Logf("core %s: re-subscribe %s at %s: %v", s.srv.Name(), appID, p.name, err)
			continue
		}
		// Anti-entropy closes whatever gap opened while the relay was
		// down: pull what the host saw, push what only we saw.
		if err := s.SyncCollabApp(nil, appID); err != nil {
			s.cfg.Logf("core %s: collab resync %s: %v", s.srv.Name(), appID, err)
		}
	}
}

// DiscoverPeers queries the trader for live DISCOVER offers and rebuilds
// the peer table. The offer lease means a dead server disappears once its
// lease lapses — availability "determined at runtime". A known peer whose
// offer is momentarily missing (a late lease refresh losing the race with
// our query) is kept for one round marked suspect rather than silently
// dropped; the failure detector decides its fate.
func (s *Substrate) DiscoverPeers() error {
	if s.trader == nil {
		return nil
	}
	ctx, cancel := s.rpcCtx()
	defer cancel()
	offers, err := s.trader.QueryFederated(ctx, orb.DiscoverServiceType,
		fmt.Sprintf("name != '%s'", s.srv.Name()), s.cfg.DiscoverHops)
	if err != nil {
		return err
	}
	next := make(map[string]peerInfo, len(offers))
	for _, o := range offers {
		name := o.Props["name"]
		addr := o.Props["addr"]
		if name == "" || addr == "" {
			continue
		}
		next[name] = peerInfo{name: name, addr: addr}
		s.health.discoverySeen(name, addr)
		if s.gossip != nil {
			s.gossip.Seed(name, addr)
		}
	}
	var dropped []string
	var fresh []peerInfo
	s.mu.Lock()
	for name, p := range next {
		if _, known := s.peers[name]; !known {
			fresh = append(fresh, p)
		}
	}
	for name, p := range s.peers {
		if _, ok := next[name]; ok {
			continue
		}
		if s.health.keepThroughMiss(name) {
			next[name] = p
		} else {
			dropped = append(dropped, name)
		}
	}
	s.peers = next
	s.mu.Unlock()
	for _, name := range dropped {
		s.health.forget(name)
		s.dir.dropPeer(name)
	}
	if len(fresh) > 0 && s.gossip == nil {
		// Warm up newly discovered peers with one concurrent ping round:
		// it primes the pooled connections and seeds the failure detector,
		// so the first federation-wide listing doesn't pay N dials. Under
		// gossip the round is skipped — listings come from the replica, so
		// priming N connections would reintroduce the O(peers) cost the
		// epidemic path exists to avoid.
		fanOut(s, nil, "discoverPing", fresh, func(c context.Context, p peerInfo) (pingResp, error) {
			var resp pingResp
			err := s.invokePeer(c, p, p.serverRef(), "ping", pingReq{}, &resp)
			return resp, err
		})
	}
	return nil
}

// Accounting exposes the per-peer resource accountant: set policies with
// SetPolicy and inspect consumption with Usage.
func (s *Substrate) Accounting() *policy.Accountant { return s.acct }

// RelayStats snapshots the host-side push-relay counters, one row per
// subscribed peer (drops, batches, invocations). It implements half of
// server.StatsProvider so GET /api/stats can surface relay shedding next
// to client-FIFO drops.
func (s *Substrate) RelayStats() []server.RelayStats {
	s.mu.Lock()
	senders := make([]*relaySender, 0, len(s.relays))
	for _, r := range s.relays {
		senders = append(senders, r)
	}
	s.mu.Unlock()
	out := make([]server.RelayStats, 0, len(senders))
	for _, r := range senders {
		out = append(out, r.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// WireStats snapshots the substrate ORB's cumulative wire-level counters
// (invocations vs write syscalls vs bytes), the other half of
// server.StatsProvider.
func (s *Substrate) WireStats() server.WireStats {
	st := s.orb.Stats()
	return server.WireStats{
		Invocations: st.Invocations,
		Oneways:     st.Oneways,
		Writes:      st.Writes,
		BytesOut:    st.BytesOut,
		Replies:     st.Replies,
		V2Conns:     st.V2Conns,
		BytesV1:     st.BytesV1,
		BytesV2:     st.BytesV2,
		InternDefs:  st.InternDefs,
		InternHits:  st.InternHits,
		Compressed:  st.Compressed,
	}
}

// Peers lists discovered peer server names. It shares peerList's
// snapshot path so callers mixing the two never take the peer-table lock
// twice for one logical read.
func (s *Substrate) Peers() []string {
	peers := s.peerList()
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		out = append(out, p.name)
	}
	return out
}

// peerList snapshots the peer table.
func (s *Substrate) peerList() []peerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]peerInfo, 0, len(s.peers))
	for _, p := range s.peers {
		out = append(out, p)
	}
	return out
}

// peerFor maps an application id to its host server's peer entry.
func (s *Substrate) peerFor(appID string) (peerInfo, error) {
	host := server.ServerOfApp(appID)
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.peers[host]
	if !ok {
		return peerInfo{}, fmt.Errorf("core: no known peer %q for application %s", host, appID)
	}
	return p, nil
}

func (s *Substrate) proxyRef(p peerInfo, appID string) orb.ObjRef {
	return orb.ObjRef{Addr: p.addr, Key: ProxyKey(appID)}
}

// invokePeer is the health-gated invocation path every two-way remote
// operation goes through: consult the breaker (fast-fail on an open one),
// invoke, and feed the outcome back to the failure detector. The caller's
// context flows into the invocation, carrying its deadline and telemetry
// trace; pass nil for detached background work.
func (s *Substrate) invokePeer(ctx context.Context, p peerInfo, ref orb.ObjRef, method string, in, out any) error {
	if err := s.health.allow(p.name); err != nil {
		return err
	}
	ictx, cancel := s.boundCtx(ctx)
	defer cancel()
	err := s.orb.Invoke(ictx, ref, method, in, out)
	s.observePeer(p, err)
	return err
}

// observePeer classifies one invocation outcome for the failure detector:
// only communication failures and deadline expiry count against a peer —
// any servant-raised error proves it is alive.
func (s *Substrate) observePeer(p peerInfo, err error) {
	if err == nil || !orb.IsPeerFailure(err) {
		s.health.reportSuccess(p.name, p.addr)
	} else {
		s.health.reportFailure(p.name, p.addr, err)
	}
}

// PeerHealth snapshots the failure detector for GET /api/stats; it
// implements server.HealthProvider.
func (s *Substrate) PeerHealth() []server.PeerHealthStats {
	return s.health.snapshot()
}

// DirectoryStats snapshots the directory cache and scatter-gather
// counters for GET /api/stats; it implements server.DirectoryProvider.
func (s *Substrate) DirectoryStats() server.DirectoryStats {
	st := s.dir.stats()
	st.FanoutWorkers = int(s.fanWorkers.Load())
	st.FanoutRounds = s.fanRounds.Load()
	st.FanoutCalls = s.fanCalls.Load()
	st.GossipServed = s.gossipServed.value()
	st.FanoutServed = s.fanoutServed.value()
	return st
}

// SetDirCacheTTL adjusts the directory cache freshness window at runtime
// (see Config.DirCacheTTL; 0 restores the default, < 0 disables caching).
func (s *Substrate) SetDirCacheTTL(d time.Duration) { s.dir.setTTL(d) }

// ---------------------------------------------------------------------------
// server.Federation implementation.
// ---------------------------------------------------------------------------

// RemoteApps lists the applications this user may access across the
// federation.
//
// With gossip enabled (Config.GossipEnabled) the listing is served
// entirely from the locally converged replica — zero ORB invocations,
// per-user filtering against the replicated grant maps — once the node
// has bootstrapped; dead members' entries are served marked Unavailable.
//
// Otherwise (and as the cold-start fallback before the replica is ready)
// the scatter-gather path runs: the directory cache answers first — fresh
// entries (and stale ones, served while one flight revalidates in the
// background) cost zero ORB invocations, and peers behind an open breaker
// degrade gracefully — and only the cache misses go to the wire,
// scatter-gathered concurrently so a cold listing costs ~max(per-peer
// RTT), not the sum.
func (s *Substrate) RemoteApps(ctx context.Context, user string) []server.AppInfo {
	if apps, ok := s.gossipApps(user); ok {
		return apps
	}
	s.fanoutServed.inc()
	peers := s.peerList() // the one peer-table snapshot for the whole round
	if len(peers) == 0 {
		return nil
	}
	var out []server.AppInfo
	type appJob struct {
		p    peerInfo
		plan dirPlan
	}
	var jobs []appJob
	for _, p := range peers {
		plan := s.dir.plan(p.name, user, s.health.allow(p.name) != nil)
		switch plan.state {
		case dirFresh, dirUnavailable:
			out = append(out, plan.apps...)
		case dirStale:
			out = append(out, plan.apps...)
			if plan.lead {
				s.revalidateApps(p, user)
			}
		default: // dirFetch, dirJoin: pay the wire (or wait on who is)
			jobs = append(jobs, appJob{p: p, plan: plan})
		}
	}
	if len(jobs) > 0 {
		results := fanOut(s, ctx, "listApplications", jobs,
			func(c context.Context, j appJob) ([]server.AppInfo, error) {
				return s.peerApps(c, j.p, user, j.plan), nil
			})
		for _, r := range results {
			out = append(out, r.val...)
		}
	}
	sortAppInfos(out)
	return out
}

// peerApps resolves one peer's contribution to a listing round on the
// miss path: the single-flight leader fetches and publishes, followers
// wait for that flight. Either way an unreachable peer degrades to the
// unavailable-marked cached listing.
func (s *Substrate) peerApps(ctx context.Context, p peerInfo, user string, plan dirPlan) []server.AppInfo {
	var apps []server.AppInfo
	var err error
	if plan.state == dirJoin {
		apps, err = s.awaitApps(ctx, p, user, plan.flight)
	} else {
		apps, err = s.fetchApps(ctx, p, user)
	}
	switch {
	case err == nil:
		return apps
	case orb.IsPeerFailure(err) || errors.Is(err, ErrPeerDown) || errors.Is(err, ErrPeerSuspect) ||
		errors.Is(err, context.Canceled):
		return apps // the unavailable-marked fallback (nil when never listed)
	default:
		s.cfg.Logf("core %s: listApplications at %s: %v", s.srv.Name(), p.name, err)
		return nil
	}
}

// fetchApps is the leader side of a single-flight listing fetch: one RPC
// whose outcome is published to the cache, releasing any followers. On
// failure it returns the unavailable-marked fallback alongside the error.
func (s *Substrate) fetchApps(ctx context.Context, p peerInfo, user string) ([]server.AppInfo, error) {
	var resp listAppsResp
	// Directory listings are bulk exchanges: on a v2 connection the reply
	// (potentially hundreds of AppInfo entries) may compress and stream.
	err := s.invokePeer(orb.WithBulk(ctx), p, p.serverRef(), "listApplications", listAppsReq{User: user}, &resp)
	s.dir.complete(p.name, user, resp.Apps, err)
	if err != nil {
		apps, _ := s.dir.resolve(p.name, user)
		return apps, err
	}
	return resp.Apps, nil
}

// awaitApps is the follower side: wait for the in-flight fetch (bounded
// like an RPC of our own) and read its outcome from the cache.
func (s *Substrate) awaitApps(ctx context.Context, p peerInfo, user string, flight <-chan struct{}) ([]server.AppInfo, error) {
	wctx, cancel := s.boundCtx(ctx)
	defer cancel()
	select {
	case <-flight:
		return s.dir.resolve(p.name, user)
	case <-wctx.Done():
		return nil, wctx.Err()
	}
}

// revalidateApps refreshes one stale cache entry in the background; the
// caller already holds the flight leadership. If the substrate is closing
// the flight is completed immediately so no follower waits on it.
func (s *Substrate) revalidateApps(p peerInfo, user string) {
	started := s.goTracked(func() {
		ctx, cancel := s.rpcCtx()
		defer cancel()
		s.fetchApps(ctx, p, user)
	})
	if !started {
		s.dir.complete(p.name, user, nil, fmt.Errorf("core: substrate closed"))
	}
}

// RemoteUsers lists users logged in at a named peer; with an empty peer
// name it merges every peer's logins — from the gossip replica when the
// epidemic directory is ready (zero ORB invocations), otherwise by
// scatter-gathering every reachable peer (best effort: unreachable peers
// contribute nothing).
func (s *Substrate) RemoteUsers(ctx context.Context, peerName string) ([]string, error) {
	listUsers := func(c context.Context, p peerInfo) ([]string, error) {
		var resp listUsersResp
		err := s.invokePeer(orb.WithBulk(c), p, p.serverRef(), "listUsers", listUsersReq{}, &resp)
		return resp.Users, err
	}
	if peerName == "" {
		if users, ok := s.gossipUsers(); ok {
			return users, nil
		}
		s.fanoutServed.inc()
		results := fanOut(s, ctx, "listUsers", s.peerList(), listUsers)
		seen := make(map[string]bool)
		var out []string
		for _, r := range results {
			if r.err != nil {
				continue
			}
			for _, u := range r.val {
				if !seen[u] {
					seen[u] = true
					out = append(out, u)
				}
			}
		}
		sort.Strings(out)
		return out, nil
	}
	s.mu.Lock()
	p, ok := s.peers[peerName]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown peer %q", peerName)
	}
	return listUsers(ctx, p)
}

// RemotePrivilege performs level-two authorization at the host server.
func (s *Substrate) RemotePrivilege(ctx context.Context, user, appID string) (string, error) {
	p, err := s.peerFor(appID)
	if err != nil {
		return "", err
	}
	var resp privilegeResp
	if err := s.invokePeer(ctx, p, p.serverRef(), "privilege", privilegeReq{User: user, App: appID}, &resp); err != nil {
		return "", err
	}
	return resp.Privilege, nil
}

// ForwardCommand relays a client command to the application's host.
func (s *Substrate) ForwardCommand(ctx context.Context, appID string, cmd *wire.Message) error {
	p, err := s.peerFor(appID)
	if err != nil {
		return err
	}
	return s.invokePeer(ctx, p, s.proxyRef(p, appID), "command", commandReq{Cmd: cmd}, nil)
}

// RemoteLock relays a lock request; lock state lives at the host only.
func (s *Substrate) RemoteLock(ctx context.Context, appID, owner string, acquire bool) (bool, string, error) {
	p, err := s.peerFor(appID)
	if err != nil {
		return false, "", err
	}
	var resp lockResp
	if err := s.invokePeer(ctx, p, s.proxyRef(p, appID), "lock",
		lockReq{Owner: owner, Acquire: acquire}, &resp); err != nil {
		return false, "", err
	}
	return resp.Granted, resp.Holder, nil
}

// ForwardCollab relays a collaboration message for group-wide fan-out at
// the host server; ctx carries the originating request's deadline and
// telemetry trace.
func (s *Substrate) ForwardCollab(ctx context.Context, appID string, m *wire.Message) error {
	p, err := s.peerFor(appID)
	if err != nil {
		return err
	}
	return s.invokePeer(ctx, p, s.proxyRef(p, appID), "collab",
		collabReq{Msg: m, From: s.srv.Name()}, nil)
}

// SyncCollabApp runs one anti-entropy exchange for the application's
// replicated collaboration log against its host server: pull every op we
// are missing (the host splices evicted history from its WAL), then push
// any op only we hold — after a partition heals, one exchange per side
// makes the logs byte-identical regardless of what the relays dropped.
func (s *Substrate) SyncCollabApp(ctx context.Context, appID string) error {
	p, err := s.peerFor(appID)
	if err != nil {
		return err
	}
	var resp collabSyncResp
	err = s.invokePeer(ctx, p, s.proxyRef(p, appID), "collabSync",
		collabSyncReq{From: s.srv.Name(), VV: s.srv.CollabVV(appID)}, &resp)
	if err != nil {
		return err
	}
	applied := s.srv.CollabApply(appID, resp.Ops, resp.VV, p.name)
	s.collabSyncs.Inc()
	s.collabSyncOps.Add(uint64(applied))
	if ops, upTo := s.srv.CollabDeltas(appID, resp.VV); len(ops) > 0 {
		if err := s.invokePeer(ctx, p, s.proxyRef(p, appID), "collabPush",
			collabPushReq{From: s.srv.Name(), Ops: ops, VV: upTo}, nil); err != nil {
			return err
		}
		s.collabSyncOps.Add(uint64(len(ops)))
	}
	return nil
}

// CollabSyncNow synchronously runs one anti-entropy exchange for every
// subscribed application, in deterministic order. Convergence tests
// (experiment C1) drive replication in lockstep with it, the way
// GossipNow drives directory rounds.
func (s *Substrate) CollabSyncNow() {
	s.mu.Lock()
	apps := make([]string, 0, len(s.subs)+len(s.polls))
	for appID := range s.subs {
		apps = append(apps, appID)
	}
	for appID := range s.polls {
		apps = append(apps, appID)
	}
	s.mu.Unlock()
	sort.Strings(apps)
	for _, appID := range apps {
		if err := s.SyncCollabApp(nil, appID); err != nil {
			s.cfg.Logf("core %s: collab sync %s: %v", s.srv.Name(), appID, err)
		}
	}
}

// Subscribe arranges for the application's group traffic to reach this
// server: a push relay at the host (Push mode) or a local poller (Poll
// mode). Idempotent.
func (s *Substrate) Subscribe(ctx context.Context, appID string) error {
	p, err := s.peerFor(appID)
	if err != nil {
		return err
	}
	switch s.cfg.Mode {
	case Push:
		s.mu.Lock()
		if s.subs[appID] {
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		err := s.invokePeer(ctx, p, p.serverRef(), "subscribe", subscribeReq{
			App: appID, Peer: s.srv.Name(), PeerAddr: s.orb.Addr(),
		}, nil)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.subs[appID] = true
		s.mu.Unlock()
		// First subscription: pull the group's replicated log so
		// latecomer clients replay history locally, with no per-client
		// catch-up invocations against the host.
		if err := s.SyncCollabApp(ctx, appID); err != nil {
			s.cfg.Logf("core %s: collab sync %s: %v", s.srv.Name(), appID, err)
		}
		return nil
	default: // Poll
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return fmt.Errorf("core: substrate closed")
		}
		if _, ok := s.polls[appID]; ok {
			return nil
		}
		pl := newPoller(s, p, appID, s.cfg.PollInterval)
		s.polls[appID] = pl
		return nil
	}
}

// Unsubscribe reverses Subscribe.
func (s *Substrate) Unsubscribe(appID string) error {
	switch s.cfg.Mode {
	case Push:
		s.mu.Lock()
		delete(s.subs, appID)
		s.mu.Unlock()
		p, err := s.peerFor(appID)
		if err != nil {
			return err
		}
		return s.invokePeer(nil, p, p.serverRef(), "unsubscribe", subscribeReq{
			App: appID, Peer: s.srv.Name(),
		}, nil)
	default:
		s.mu.Lock()
		defer s.mu.Unlock()
		if pl, ok := s.polls[appID]; ok {
			pl.close()
			delete(s.polls, appID)
		}
		return nil
	}
}

// NotifyEvent disseminates a control-channel event: with gossip enabled
// it publishes the new local snapshot into the epidemic directory (each
// remote domain synthesizes the event when the delta reaches it) instead
// of the O(peers) oneway broadcast; otherwise it fans the event out to
// every peer. Either way it also reacts to the local server's own
// application lifecycle events by installing or removing the
// application's CorbaProxy servant and naming binding.
func (s *Substrate) NotifyEvent(ev *wire.Message) {
	if ev.Client == s.srv.Name() {
		switch ev.Op {
		case "app-registered":
			s.orb.Register(ProxyKey(ev.App), s.proxyServant(ev.App))
			if s.naming != nil {
				ctx, cancel := s.rpcCtx()
				if err := s.naming.Rebind(ctx, ev.App, s.orb.Ref(ProxyKey(ev.App))); err != nil {
					s.cfg.Logf("core %s: naming bind %s: %v", s.srv.Name(), ev.App, err)
				}
				cancel()
			}
		case "app-closed":
			s.orb.Unregister(ProxyKey(ev.App))
			if s.naming != nil {
				ctx, cancel := s.rpcCtx()
				s.naming.Unbind(ctx, ev.App)
				cancel()
			}
		}
	}
	if s.gossip != nil {
		apps, users := s.gossipSnapshot()
		s.gossip.PublishNow(apps, users)
		return
	}
	for _, p := range s.peerList() {
		p := p
		if s.health.allow(p.name) != nil {
			continue // breaker open: don't queue events for a dead peer
		}
		s.goTracked(func() {
			ctx, cancel := s.rpcCtx()
			defer cancel()
			err := s.orb.InvokeOneway(ctx, p.controlRef(), "event",
				eventReq{Ev: ev, From: s.srv.Name()})
			if err != nil {
				s.cfg.Logf("core %s: event to %s: %v", s.srv.Name(), p.name, err)
				// A oneway success proves nothing (no reply), but a failed
				// write is evidence for the failure detector.
				if orb.IsPeerFailure(err) {
					s.health.reportFailure(p.name, p.addr, err)
				}
			}
		})
	}
}

// acceptSubscription (host side) joins a relay member for the subscribing
// peer into the application's collaboration group.
func (s *Substrate) acceptSubscription(r subscribeReq) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("core: substrate closed")
	}
	sender, ok := s.relays[r.Peer]
	if ok && r.PeerAddr != "" && sender.peer.addr != r.PeerAddr {
		// The peer restarted at a new address: retire the stale sender so
		// pushes don't keep aiming at the dead endpoint.
		sender.close()
		ok = false
	}
	if !ok {
		sender = newRelaySender(s, peerInfo{name: r.Peer, addr: r.PeerAddr})
		s.relays[r.Peer] = sender
	}
	s.mu.Unlock()
	return s.srv.SubscribeRelay(r.App, r.Peer, sender.deliverFunc(r.App))
}
