package core

import (
	"errors"
	"testing"
	"time"
)

func TestHealthTableBreakerLifecycle(t *testing.T) {
	var downs, recoveries []string
	h := newHealthTable(1, 3)
	h.onDown = func(name, addr string) { downs = append(downs, name) }
	h.onRecovered = func(name, addr string) { recoveries = append(recoveries, name) }

	if err := h.allow("p"); err != nil {
		t.Fatalf("unknown peer blocked: %v", err)
	}
	boom := errors.New("connection refused")

	// One failure: suspect, still allowed.
	h.reportFailure("p", "addr:1", boom)
	if st := h.state("p"); st != PeerSuspect {
		t.Fatalf("state after 1 failure = %v", st)
	}
	if err := h.allow("p"); err != nil {
		t.Fatalf("suspect peer blocked: %v", err)
	}

	// A success while suspect clears suspicion.
	h.reportSuccess("p", "addr:1")
	if st := h.state("p"); st != PeerHealthy {
		t.Fatalf("state after recovery success = %v", st)
	}

	// Three consecutive failures open the breaker and fire onDown once.
	for i := 0; i < 3; i++ {
		h.reportFailure("p", "addr:1", boom)
	}
	if st := h.state("p"); st != PeerDown {
		t.Fatalf("state after 3 failures = %v", st)
	}
	if len(downs) != 1 || downs[0] != "p" {
		t.Fatalf("onDown calls = %v", downs)
	}
	if err := h.allow("p"); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("down peer allow = %v", err)
	}
	// Further failures while down don't re-fire onDown.
	h.reportFailure("p", "addr:1", boom)
	if len(downs) != 1 {
		t.Fatalf("onDown re-fired: %v", downs)
	}
	// A stray success does NOT close an open breaker — only probes do.
	h.reportSuccess("p", "addr:1")
	if st := h.state("p"); st != PeerDown {
		t.Fatalf("success closed open breaker: %v", st)
	}

	// Probe lifecycle: down -> probing (blocked with ErrPeerSuspect) ->
	// failed probe returns to down.
	if !h.beginProbe("p") {
		t.Fatal("beginProbe refused a down peer")
	}
	if h.beginProbe("p") {
		t.Fatal("duplicate probe began")
	}
	if err := h.allow("p"); !errors.Is(err, ErrPeerSuspect) {
		t.Fatalf("probing peer allow = %v", err)
	}
	h.finishProbe("p", false, boom)
	if st := h.state("p"); st != PeerDown {
		t.Fatalf("state after failed probe = %v", st)
	}
	if len(recoveries) != 0 {
		t.Fatalf("failed probe fired onRecovered: %v", recoveries)
	}

	// Successful probe closes the breaker, wakes parked senders, fires
	// onRecovered.
	ch := h.blockedCh("p")
	if ch == nil {
		t.Fatal("no blocked channel for a down peer")
	}
	if !h.beginProbe("p") {
		t.Fatal("second beginProbe refused")
	}
	h.finishProbe("p", true, nil)
	select {
	case <-ch:
	default:
		t.Fatal("recovered channel not closed")
	}
	if st := h.state("p"); st != PeerHealthy {
		t.Fatalf("state after successful probe = %v", st)
	}
	if len(recoveries) != 1 || recoveries[0] != "p" {
		t.Fatalf("onRecovered calls = %v", recoveries)
	}
	if err := h.allow("p"); err != nil {
		t.Fatalf("recovered peer blocked: %v", err)
	}

	snap := h.snapshot()
	if len(snap) != 1 || snap[0].BreakerOpens != 1 || snap[0].BreakerCloses != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHealthTableKeepThroughMiss(t *testing.T) {
	h := newHealthTable(1, 3)
	h.discoverySeen("p", "addr:1")

	// First missed round: kept, marked suspect.
	if !h.keepThroughMiss("p") {
		t.Fatal("healthy peer dropped on first missed round")
	}
	if st := h.state("p"); st != PeerSuspect {
		t.Fatalf("state after one miss = %v", st)
	}
	// Second consecutive miss: dropped.
	if h.keepThroughMiss("p") {
		t.Fatal("peer kept through second missed round")
	}

	// Reappearing in discovery resets the miss counter.
	h.discoverySeen("q", "addr:2")
	if !h.keepThroughMiss("q") {
		t.Fatal("q dropped on first miss")
	}
	h.discoverySeen("q", "addr:2")
	if !h.keepThroughMiss("q") {
		t.Fatal("q dropped after the miss counter was reset")
	}

	// A peer the breaker already declared down is never kept.
	h.discoverySeen("r", "addr:3")
	for i := 0; i < 3; i++ {
		h.reportFailure("r", "addr:3", errors.New("x"))
	}
	if h.keepThroughMiss("r") {
		t.Fatal("down peer kept through a missed round")
	}

	// Unknown peers aren't kept.
	if h.keepThroughMiss("stranger") {
		t.Fatal("unknown peer kept")
	}
}

func TestHealthTableHeartbeatRTT(t *testing.T) {
	h := newHealthTable(1, 3)
	h.heartbeatOK("p", "addr:1", 1500*time.Microsecond)
	snap := h.snapshot()
	if len(snap) != 1 || snap[0].HeartbeatRTTMicros != 1500 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].State != "healthy" {
		t.Fatalf("state = %s", snap[0].State)
	}
}
