package core

import (
	"context"
	"sort"

	"discover/internal/auth"
	"discover/internal/gossip"
	"discover/internal/orb"
	"discover/internal/server"
	"discover/internal/wire"
)

// GossipKey is the servant key of the epidemic-directory endpoint
// (Config.GossipEnabled).
const GossipKey = "Gossip"

// initGossip builds the gossip node and wires it into the substrate:
// transport over the ORB, snapshots from the local server, applied deltas
// into the directory cache and the control-event stream, and membership
// transitions exchanged with the failure detector (DESIGN §4k).
func (s *Substrate) initGossip() {
	s.gossip = gossip.NewNode(gossip.Options{
		Self:         s.srv.Name(),
		Addr:         s.orb.Addr(),
		Period:       s.cfg.GossipPeriod,
		Fanout:       s.cfg.GossipFanout,
		Rand:         s.cfg.GossipRand,
		Timeout:      s.cfg.GossipTimeout,
		Transport:    gossipTransport{s: s},
		Snapshot:     s.gossipSnapshot,
		OnApply:      s.gossipApplied,
		OnMemberUp:   s.gossipMemberUp,
		OnMemberDown: s.gossipMemberDown,
		Logf:         s.cfg.Logf,
	})
}

// Gossip exposes the node (nil when Config.GossipEnabled is false).
func (s *Substrate) Gossip() *gossip.Node { return s.gossip }

// GossipNow drives one synchronous gossip round — the experiment
// harness's lockstep driver, mirroring CheckPeersNow.
func (s *Substrate) GossipNow() {
	if s.gossip != nil {
		s.gossip.RunRound()
	}
}

// gossipTransport carries the two gossip RPCs over the substrate's ORB as
// bulk exchanges (v2 connections compress them). It deliberately skips the
// health gate — gossip is itself a failure detector and must be able to
// probe suspect and dead peers for recovery — but every outcome still
// feeds the breaker through observePeer.
type gossipTransport struct{ s *Substrate }

func (t gossipTransport) Exchange(ctx context.Context, name, addr string, req *gossip.ExchangeReq) (*gossip.ExchangeResp, error) {
	var resp gossip.ExchangeResp
	if err := t.invoke(ctx, name, addr, "exchange", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t gossipTransport) Sync(ctx context.Context, name, addr string, req *gossip.SyncReq) (*gossip.SyncResp, error) {
	var resp gossip.SyncResp
	if err := t.invoke(ctx, name, addr, "sync", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t gossipTransport) invoke(ctx context.Context, name, addr, method string, in, out any) error {
	err := t.s.orb.Invoke(orb.WithBulk(ctx), orb.ObjRef{Addr: addr, Key: GossipKey}, method, in, out)
	t.s.observePeer(peerInfo{name: name, addr: addr}, err)
	if err == nil || !orb.IsPeerFailure(err) {
		// Direct contact is as strong as a recovery probe. Since gossip
		// is the only invoker that skips the breaker gate, it may reach a
		// recovered peer long before the heartbeat prober does — close
		// the breaker through the probe path so listings stop marking the
		// peer Unavailable (reportSuccess alone never reopens a breaker;
		// probes decide recovery, and this round trip is one).
		if t.s.health.state(name) == PeerDown && t.s.health.beginProbe(name) {
			t.s.health.finishProbe(name, true, nil)
		}
	}
	return err
}

// gossipServant exposes the node to peers.
func (s *Substrate) gossipServant() orb.MethodMap {
	return orb.MethodMap{
		"exchange": orb.Handler(func(req gossip.ExchangeReq) (gossip.ExchangeResp, error) {
			return *s.gossip.HandleExchange(&req), nil
		}),
		"sync": orb.Handler(func(req gossip.SyncReq) (gossip.SyncResp, error) {
			return *s.gossip.HandleSync(&req), nil
		}),
	}
}

// gossipSnapshot collects the local directory to publish: every shared
// application with its full grant map (so replicas can serve per-user
// filtered listings without a wire hop) and the logged-in users.
func (s *Substrate) gossipSnapshot() ([]gossip.AppRecord, []string) {
	var apps []gossip.AppRecord
	for _, id := range s.srv.LocalAppIDs() {
		p, ok := s.srv.Proxy(id)
		if !ok {
			continue
		}
		reg := p.Registration()
		grants := make(map[string]string)
		if acl, ok := s.srv.Auth().ACL(id); ok {
			for _, e := range acl.Users() {
				if e.Priv != auth.None {
					grants[e.User] = e.Priv.String()
				}
			}
		}
		apps = append(apps, gossip.AppRecord{ID: id, Name: reg.Name, Kind: reg.Kind, Grants: grants})
	}
	return apps, s.srv.LoggedInUsers()
}

// gossipApplied reacts to applied remote deltas: cached listings for the
// origin predate the change (eager invalidation into the PR-4 cache), and
// once bootstrapped the substrate synthesizes the app lifecycle events the
// origin no longer broadcasts, so portal sessions keep seeing
// app-registered/app-closed exactly as before.
func (s *Substrate) gossipApplied(origin string, added, removed []gossip.Record) {
	s.dir.Invalidate(origin)
	if !s.gossip.Ready() {
		return // cold bootstrap sync: don't replay history as events
	}
	for _, r := range added {
		if r.Kind != gossip.KindApp {
			continue
		}
		ev := wire.NewEvent(origin, "app-registered", r.Key)
		ev.App = r.Key
		s.srv.HandleControlEvent(ev)
	}
	for _, r := range removed {
		if r.Kind != gossip.KindApp {
			continue
		}
		ev := wire.NewEvent(origin, "app-closed", r.Key)
		ev.App = r.Key
		s.srv.HandleControlEvent(ev)
	}
}

// gossipMemberUp handles a dead→alive membership transition: remember the
// peer (it may have been learned through gossip before the trader round)
// and invalidate its cached listings.
func (s *Substrate) gossipMemberUp(m gossip.Member) {
	s.mu.Lock()
	if !s.closed && m.Addr != "" {
		s.peers[m.Name] = peerInfo{name: m.Name, addr: m.Addr}
	}
	s.mu.Unlock()
	s.dir.Invalidate(m.Name)
}

// gossipMemberDown handles a transition to dead: listings cached from the
// peer go stale (the replica path marks its entries Unavailable anyway).
func (s *Substrate) gossipMemberDown(m gossip.Member) {
	s.dir.Invalidate(m.Name)
}

// gossipApps serves a listing from the local replica: zero ORB
// invocations. ok is false until the node bootstraps — callers fall back
// to the scatter-gather path. Entries from a dead member (or one behind an
// open breaker) are served marked Unavailable, matching the cache's
// degraded mode.
func (s *Substrate) gossipApps(user string) ([]server.AppInfo, bool) {
	n := s.gossip
	if n == nil || !n.Ready() {
		return nil, false
	}
	self := s.srv.Name()
	var out []server.AppInfo
	for _, od := range n.Directory() {
		if od.Origin == self {
			continue
		}
		unavailable := od.Status == gossip.StatusDead || s.health.allow(od.Origin) != nil
		for _, a := range od.Apps {
			priv, ok := a.Grants[user]
			if !ok {
				continue
			}
			out = append(out, server.AppInfo{
				ID: a.ID, Name: a.Name, Kind: a.Kind,
				Server: od.Origin, Privilege: priv, Unavailable: unavailable,
			})
		}
	}
	sortAppInfos(out)
	s.gossipServed.inc()
	return out, true
}

// gossipUsers serves the federation-wide user listing from the replica.
func (s *Substrate) gossipUsers() ([]string, bool) {
	n := s.gossip
	if n == nil || !n.Ready() {
		return nil, false
	}
	self := s.srv.Name()
	seen := make(map[string]bool)
	var out []string
	for _, od := range n.Directory() {
		if od.Origin == self || od.Status == gossip.StatusDead {
			continue
		}
		for _, u := range od.Users {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	sort.Strings(out)
	s.gossipServed.inc()
	return out, true
}

// GossipStats snapshots the node for GET /api/stats; ok is false when
// gossip is disabled. It implements server.GossipProvider.
func (s *Substrate) GossipStats() (server.GossipStats, bool) {
	if s.gossip == nil {
		return server.GossipStats{}, false
	}
	st := s.gossip.Stats()
	return server.GossipStats{
		Self:            st.Self,
		Ready:           st.Ready,
		Incarnation:     st.Incarnation,
		Members:         st.Members,
		Alive:           st.Alive,
		Suspect:         st.Suspect,
		Dead:            st.Dead,
		Origins:         st.Origins,
		Records:         st.Records,
		Tombstones:      st.Tombstones,
		Rounds:          st.Rounds,
		ExchangesOK:     st.ExchangesOK,
		ExchangesFailed: st.ExchangesFailed,
		Syncs:           st.Syncs,
		RecordsSent:     st.RecordsSent,
		RecordsApplied:  st.RecordsApplied,
		RumorsSent:      st.RumorsSent,
		TombstonesGCed:  st.TombstonesGCed,
		Refutations:     st.Refutations,
	}, true
}
