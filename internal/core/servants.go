package core

import (
	"sort"

	"discover/internal/collab"
	"discover/internal/orb"
	"discover/internal/server"
	"discover/internal/wire"
)

// Object keys for the substrate's servants.
const (
	ServerKey      = "DiscoverServer"
	ControlKey     = "Control"
	proxyKeyPrefix = "CorbaProxy/"
)

// ProxyKey returns the object key of an application's CorbaProxy.
func ProxyKey(appID string) string { return proxyKeyPrefix + appID }

// Wire types for the level-one DiscoverCorbaServer interface.
type (
	authUserReq   struct{ User string }
	authUserResp  struct{ OK bool }
	listAppsReq   struct{ User string }
	listAppsResp  struct{ Apps []server.AppInfo }
	listUsersReq  struct{}
	listUsersResp struct{ Users []string }
	privilegeReq  struct{ User, App string }
	privilegeResp struct{ Privilege string }
	subscribeReq  struct {
		App      string
		Peer     string // subscribing server's name
		PeerAddr string // subscribing server's ORB address
	}
	subscribeResp struct{}
	pingReq       struct{}
	pingResp      struct{ Name string }
)

// Wire types for the level-two CorbaProxy interface.
type (
	commandReq  struct{ Cmd *wire.Message }
	commandResp struct{}
	lockReq     struct {
		Owner   string
		Acquire bool
	}
	lockResp struct {
		Granted bool
		Holder  string
	}
	collabReq struct {
		Msg  *wire.Message
		From string
	}
	collabResp struct{}
	// collabSyncReq/Resp are the pull leg of collab anti-entropy: the
	// requester sends its watermark vector and receives every op it is
	// missing plus the watermarks it may adopt afterwards.
	collabSyncReq struct {
		From string            // requesting server
		VV   map[string]uint64 // requester's per-origin watermark vector
	}
	collabSyncResp struct {
		Ops []collab.Op
		VV  map[string]uint64
	}
	// collabPushReq is the push leg: ops the requester holds that the
	// host's answered vector showed it was missing.
	collabPushReq struct {
		From string
		Ops  []collab.Op
		VV   map[string]uint64
	}
	collabPushResp struct{}
	pollReq        struct {
		SinceSeq uint64
		From     string // polling server, for resource accounting
	}
	pollResp struct {
		Msgs    []*wire.Message
		LastSeq uint64
	}
)

// Wire types for the Control channel.
type (
	deliverReq struct {
		App  string
		Msg  *wire.Message
		From string
	}
	deliverResp struct{}
	deliverItem struct {
		App string
		Msg *wire.Message
	}
	deliverBatchReq struct {
		Items []deliverItem
		From  string
	}
	deliverBatchResp struct{}
	eventReq         struct {
		Ev   *wire.Message
		From string
	}
	eventResp struct{}
)

// registerServants installs the substrate's servants on its ORB.
func (s *Substrate) registerServants() {
	s.orb.Register(ServerKey, s.serverServant())
	s.orb.Register(ControlKey, s.controlServant())
}

// serverServant is the DiscoverCorbaServer: the server's gateway for all
// other DISCOVER servers.
func (s *Substrate) serverServant() orb.Servant {
	return orb.MethodMap{
		"authenticateUser": orb.Handler(func(r authUserReq) (authUserResp, error) {
			err := s.srv.LoginAsserted(r.User)
			return authUserResp{OK: err == nil}, nil
		}),
		"listApplications": orb.Handler(func(r listAppsReq) (listAppsResp, error) {
			return listAppsResp{Apps: s.srv.LocalApps(r.User)}, nil
		}),
		"listUsers": orb.Handler(func(listUsersReq) (listUsersResp, error) {
			return listUsersResp{Users: s.srv.LoggedInUsers()}, nil
		}),
		"privilege": orb.Handler(func(r privilegeReq) (privilegeResp, error) {
			return privilegeResp{Privilege: s.srv.PrivilegeName(r.User, r.App)}, nil
		}),
		"subscribe": orb.Handler(func(r subscribeReq) (subscribeResp, error) {
			return subscribeResp{}, s.acceptSubscription(r)
		}),
		"unsubscribe": orb.Handler(func(r subscribeReq) (subscribeResp, error) {
			s.srv.UnsubscribeRelay(r.App, r.Peer)
			return subscribeResp{}, nil
		}),
		"ping": orb.Handler(func(pingReq) (pingResp, error) {
			return pingResp{Name: s.srv.Name()}, nil
		}),
	}
}

// controlServant receives pushed group traffic and system events from
// peers.
func (s *Substrate) controlServant() orb.Servant {
	return orb.MethodMap{
		"deliver": orb.Handler(func(r deliverReq) (deliverResp, error) {
			s.srv.DeliverRemoteMessage(r.App, r.Msg, r.From)
			return deliverResp{}, nil
		}),
		// deliverBatch is the batched form of deliver: one invocation
		// carries a whole drained relay queue. Items arrive in the
		// host's enqueue order; consecutive same-app runs share one
		// local fan-out call so ordering within an app is untouched.
		"deliverBatch": orb.Handler(func(r deliverBatchReq) (deliverBatchResp, error) {
			for start := 0; start < len(r.Items); {
				end := start + 1
				for end < len(r.Items) && r.Items[end].App == r.Items[start].App {
					end++
				}
				msgs := make([]*wire.Message, 0, end-start)
				for _, it := range r.Items[start:end] {
					msgs = append(msgs, it.Msg)
				}
				s.srv.DeliverRemoteBatch(r.Items[start].App, msgs, r.From)
				start = end
			}
			return deliverBatchResp{}, nil
		}),
		"event": orb.Handler(func(r eventReq) (eventResp, error) {
			// An application lifecycle event makes every listing cached
			// from the app's host stale: drop their freshness before the
			// server reacts, so the next listing refetches coherently.
			if r.Ev != nil && (r.Ev.Op == "app-registered" || r.Ev.Op == "app-closed") {
				origin := server.ServerOfApp(r.Ev.App)
				if origin == "" {
					origin = r.From
				}
				s.dir.invalidatePeer(origin, true)
			}
			s.srv.HandleControlEvent(r.Ev)
			return eventResp{}, nil
		}),
	}
}

// CodePolicy is the error code returned when a peer exceeds its resource
// policy (§6.3 resource utilization).
const CodePolicy = "RESOURCE_POLICY"

// maxMembershipWire bounds the meter exemption for membership
// replication messages: they carry only ids and the op identity stamp,
// so anything larger is charged against the peer's budget.
const maxMembershipWire = 1024

// meter applies the host's per-peer resource accounting; the principal is
// the peer server on whose behalf the request arrives.
func (s *Substrate) meter(principal string, bytes int) error {
	if principal == "" || s.acct.Allow(principal, bytes) {
		return nil
	}
	return &orb.RemoteError{Code: CodePolicy, Msg: principal + " exceeded its access policy"}
}

// proxyServant is the CorbaProxy for one local application: the
// application's gateway for all other servers.
func (s *Substrate) proxyServant(appID string) orb.Servant {
	return orb.MethodMap{
		"command": orb.Handler(func(r commandReq) (commandResp, error) {
			if err := s.meter(server.ServerOfClient(r.Cmd.Client), r.Cmd.ApproxSize()); err != nil {
				return commandResp{}, err
			}
			return commandResp{}, s.srv.EnqueueLocalCommand(appID, r.Cmd)
		}),
		"lock": orb.Handler(func(r lockReq) (lockResp, error) {
			if err := s.meter(server.ServerOfClient(r.Owner), 0); err != nil {
				return lockResp{}, err
			}
			granted, holder, err := s.srv.LockRequest(appID, r.Owner, r.Acquire)
			if err != nil {
				return lockResp{}, err
			}
			return lockResp{Granted: granted, Holder: holder}, nil
		}),
		"collab": orb.Handler(func(r collabReq) (collabResp, error) {
			// Membership replication (join/leave/sub-switch ops) is
			// middleware bookkeeping the CRDT log needs to converge; only
			// user-originated traffic (chat, strokes, view shares) draws
			// down the origin domain's access-policy budget. The exemption
			// is validated, not taken on the peer's word: the message must
			// be payload-free with a membership op stamp and small enough
			// for pure bookkeeping, or it is metered like any other
			// traffic — a peer cannot bypass its budget by tagging bulk
			// data as a join.
			size := r.Msg.ApproxSize()
			if !collab.MembershipWire(r.Msg) || size > maxMembershipWire {
				if err := s.meter(r.From, size); err != nil {
					return collabResp{}, err
				}
			}
			s.srv.DeliverCollabFromPeer(appID, r.Msg, r.From)
			return collabResp{}, nil
		}),
		// collabSync/collabPush are the two legs of the replicated-log
		// anti-entropy exchange (DESIGN §4l). Like membership ops above,
		// they are replication bookkeeping and bypass the policy meter.
		"collabSync": orb.Handler(func(r collabSyncReq) (collabSyncResp, error) {
			ops, upTo := s.srv.CollabDeltas(appID, r.VV)
			return collabSyncResp{Ops: ops, VV: upTo}, nil
		}),
		"collabPush": orb.Handler(func(r collabPushReq) (collabPushResp, error) {
			s.srv.CollabApply(appID, r.Ops, r.VV, r.From)
			return collabPushResp{}, nil
		}),
		"pollUpdates": orb.Handler(func(r pollReq) (pollResp, error) {
			if err := s.meter(r.From, 0); err != nil {
				return pollResp{}, err
			}
			return s.pollUpdates(appID, r.SinceSeq), nil
		}),
	}
}

// pollUpdates serves the poll-mode propagation path (§5.2.3: "the
// CorbaProxy objects poll each other for updates and responses"). It
// returns group traffic from the application log after SinceSeq.
// Responses are included only for clients of no particular server —
// pollers filter on their own clients.
func (s *Substrate) pollUpdates(appID string, since uint64) pollResp {
	log := s.srv.Archive().ApplicationLog(appID)
	entries := log.Since(since)
	resp := pollResp{LastSeq: since}
	for _, e := range entries {
		resp.LastSeq = e.Seq
		switch e.Msg.Kind {
		case wire.KindUpdate, wire.KindChat, wire.KindWhiteboard,
			wire.KindViewShare, wire.KindResponse, wire.KindError:
			resp.Msgs = append(resp.Msgs, e.Msg)
		}
	}
	return resp
}

// sortAppInfos keeps merged app lists deterministic for clients.
func sortAppInfos(apps []server.AppInfo) {
	sort.Slice(apps, func(i, j int) bool { return apps[i].ID < apps[j].ID })
}
