package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"discover/internal/orb"
	"discover/internal/telemetry"
)

// DefaultFanoutWorkers bounds how many peers one scatter-gather round
// talks to concurrently (Config.FanoutWorkers).
const DefaultFanoutWorkers = 16

// fanoutMergeReserve is the slice of the caller's deadline kept back from
// per-peer invocations so the round can merge results (and mark
// stragglers unavailable) after its slowest call completes or times out.
const fanoutMergeReserve = 250 * time.Millisecond

// fanResult is one item's outcome from a scatter-gather round, in input
// order.
type fanResult[T any] struct {
	val T
	err error
}

// fanOut is the scatter-gather engine behind the federation's one-to-all
// operations (directory listings, user queries, discovery warm-up): it
// runs fn once per item on a bounded worker pool, so a round costs
// ~max(per-peer RTT) instead of the sum, and a single slow peer cannot
// serialize the rest. The per-item context is carved from ctx's budget
// (see orb.CarveBudget); fn is expected to go through invokePeer, which
// adds the breaker gate and the RPC timeout.
//
// Contract since the epidemic directory (Config.GossipEnabled, DESIGN
// §4k): fan-out is the COLD-START AND FALLBACK path for listings, not the
// hot path. RemoteApps/RemoteUsers("") consult the gossip replica first
// and only scatter-gather while the replica is still bootstrapping (or
// when gossip is disabled); per-app operations (commands, locks, collab)
// are point-to-point and never fanned out. Callers adding new one-to-all
// operations should first ask whether the data can ride the replica
// instead — O(peers) rounds are what the gossip layer exists to delete.
// The gossipServed/fanoutServed counters in the stats directory block
// record which path served each listing.
//
// Generic over the item so callers can thread per-peer plans through
// without a side table; results come back in input order. It is a
// package-level function because Go methods cannot be generic.
func fanOut[I, T any](s *Substrate, ctx context.Context, op string, items []I,
	fn func(context.Context, I) (T, error)) []fanResult[T] {
	if len(items) == 0 {
		return nil
	}
	workers := int(s.fanWorkers.Load())
	if workers <= 0 {
		workers = DefaultFanoutWorkers
	}
	if workers > len(items) {
		workers = len(items)
	}
	cctx, cancel := orb.CarveBudget(ctx, fanoutMergeReserve)
	defer cancel()

	out := make([]fanResult[T], len(items))
	t0 := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				v, err := fn(cctx, items[i])
				out[i] = fanResult[T]{val: v, err: err}
			}
		}()
	}
	wg.Wait()
	telemetry.GetHistogram("discover_fanout_seconds", "op", op).Observe(time.Since(t0))
	s.fanRounds.Add(1)
	s.fanCalls.Add(uint64(len(items)))
	return out
}

// SetFanoutWorkers adjusts the scatter-gather concurrency bound at
// runtime (experiments compare sequential — one worker — against
// parallel rounds without rebuilding the federation). n <= 0 restores
// the default.
func (s *Substrate) SetFanoutWorkers(n int) {
	if n <= 0 {
		n = DefaultFanoutWorkers
	}
	s.fanWorkers.Store(int64(n))
}
