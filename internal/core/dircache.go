package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"discover/internal/server"
	"discover/internal/telemetry"
)

// DefaultDirCacheTTL is the directory cache's freshness window
// (Config.DirCacheTTL). Coherence does not ride on the TTL alone:
// app-registered/app-closed control events and peer health transitions
// invalidate eagerly, so the TTL only bounds staleness when an event is
// lost on the wire.
const DefaultDirCacheTTL = 2 * time.Second

// dirKey identifies one cached listing: what one user may see at one
// peer. Listings are per-user because the peer filters by its ACLs.
type dirKey struct{ peer, user string }

// dirEntry is one (peer, user) listing in the cache. An entry moves
// through three states (DESIGN §4f):
//
//   - fresh: fetched within the TTL — served directly, zero ORB work.
//   - stale-revalidating: past the TTL (or event-invalidated) — the data
//     is still the last good listing; an expired-but-present entry is
//     served immediately while one flight refetches, an invalidated one
//     forces a synchronous refetch.
//   - unavailable: the peer's breaker is open — the last good listing is
//     served with every application marked Unavailable (the PR-2
//     degraded mode, folded into this cache).
type dirEntry struct {
	apps    []server.AppInfo // last good listing; never mutated in place
	fetched time.Time        // zero: invalidated or never fetched
	jitter  float64          // per-entry TTL multiplier in [0.9, 1.1]
	flight  chan struct{}    // non-nil while a fetch is in flight; closed on completion
	lastErr error            // outcome of the last completed fetch
}

// ttlJitter draws a fresh TTL multiplier for one entry. A flash crowd of
// listings cached within the same burst would otherwise expire in
// lockstep and thundering-herd the fan-out engine with simultaneous
// revalidations; ±10% spreads the expiries out.
func ttlJitter() float64 { return 0.9 + 0.2*rand.Float64() }

// effectiveTTL applies an entry's jitter multiplier to the configured
// freshness window.
func effectiveTTL(ttl time.Duration, jitter float64) time.Duration {
	if jitter <= 0 {
		return ttl
	}
	return time.Duration(float64(ttl) * jitter)
}

// dirPlan is the cache's decision for one peer's slot in a listing round.
type dirPlan struct {
	state  dirState
	apps   []server.AppInfo // populated for fresh/stale/unavailable serves
	flight chan struct{}    // populated for fetch (to complete) and join (to wait on)
	lead   bool             // this caller owns the in-flight fetch
}

type dirState int

const (
	dirFresh       dirState = iota // cache hit: serve, no RPC
	dirStale                       // serve stale copy; leader revalidates in background
	dirUnavailable                 // breaker open: serve unavailable-marked copy
	dirFetch                       // miss, this caller fetches (single-flight leader)
	dirJoin                        // miss, another fetch is in flight: wait for it
)

// dirCounter pairs a substrate-local count (reported in GET /api/stats,
// which must start at zero for each substrate) with the process-wide
// /metrics series it feeds (labeled by server, cumulative across
// substrate generations as Prometheus counters are).
type dirCounter struct {
	local  atomic.Uint64
	metric *telemetry.Counter
}

func (c *dirCounter) add(n uint64)  { c.local.Add(n); c.metric.Add(n) }
func (c *dirCounter) inc()          { c.add(1) }
func (c *dirCounter) value() uint64 { return c.local.Load() }

// dirCache is the event-coherent directory cache: TTL freshness, eager
// invalidation from application-lifecycle events and health transitions,
// and single-flight miss deduplication so a thundering herd of portal
// refreshes costs one RPC per peer.
type dirCache struct {
	ttl atomic.Int64 // nanoseconds; < 0 disables freshness (every read refetches)

	mu      sync.Mutex
	entries map[dirKey]*dirEntry

	hits, staleServes, misses, coalesced, unavailableServes dirCounter
	eventInvalidations, healthInvalidations                 dirCounter
	peerInvalidations                                       dirCounter
}

func newDirCache(serverName string, ttl time.Duration) *dirCache {
	c := &dirCache{entries: make(map[dirKey]*dirEntry)}
	for _, reg := range []struct {
		c    *dirCounter
		name string
	}{
		{&c.hits, "discover_dircache_hits_total"},
		{&c.staleServes, "discover_dircache_stale_serves_total"},
		{&c.misses, "discover_dircache_misses_total"},
		{&c.coalesced, "discover_dircache_coalesced_total"},
		{&c.unavailableServes, "discover_dircache_unavailable_serves_total"},
		{&c.eventInvalidations, "discover_dircache_event_invalidations_total"},
		{&c.healthInvalidations, "discover_dircache_health_invalidations_total"},
		{&c.peerInvalidations, "discover_dircache_peer_invalidations_total"},
	} {
		reg.c.metric = telemetry.GetCounter(reg.name, "server", serverName)
	}
	if ttl == 0 {
		ttl = DefaultDirCacheTTL
	}
	c.ttl.Store(int64(ttl))
	return c
}

// setTTL adjusts the freshness window at runtime (experiments flip
// between cached and uncached listings on a live federation). d == 0
// restores the default; d < 0 disables freshness so every read refetches
// while entries still back the degraded unavailable serve.
func (c *dirCache) setTTL(d time.Duration) {
	if d == 0 {
		d = DefaultDirCacheTTL
	}
	c.ttl.Store(int64(d))
}

func copyApps(apps []server.AppInfo) []server.AppInfo {
	if apps == nil {
		return nil
	}
	return append([]server.AppInfo(nil), apps...)
}

// unavailableCopy marks every application of a cached listing
// Unavailable; nil in, nil out (a peer with no cached listing contributes
// nothing, not an empty allocation).
func unavailableCopy(apps []server.AppInfo) []server.AppInfo {
	if len(apps) == 0 {
		return nil
	}
	out := make([]server.AppInfo, len(apps))
	for i, a := range apps {
		a.Unavailable = true
		out[i] = a
	}
	return out
}

// plan decides how one peer's slot of a listing round is served. down is
// the peer's breaker state at snapshot time. The flight channel a leader
// receives MUST be resolved with complete(), or followers would wait out
// their full deadline.
func (c *dirCache) plan(peer, user string, down bool) (p dirPlan) {
	ttl := time.Duration(c.ttl.Load())
	k := dirKey{peer: peer, user: user}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[k]
	if down {
		p.state = dirUnavailable
		if e != nil {
			p.apps = unavailableCopy(e.apps)
		}
		c.unavailableServes.inc()
		return p
	}
	if e != nil && !e.fetched.IsZero() && ttl >= 0 {
		if time.Since(e.fetched) <= effectiveTTL(ttl, e.jitter) {
			p.state = dirFresh
			p.apps = copyApps(e.apps)
			c.hits.inc()
			return p
		}
		// Expired but present: serve-while-revalidate. The first caller
		// past the TTL becomes the revalidation leader.
		p.state = dirStale
		p.apps = copyApps(e.apps)
		c.staleServes.inc()
		if e.flight == nil {
			e.flight = make(chan struct{})
			p.flight = e.flight
			p.lead = true
		}
		return p
	}
	// Miss: no entry, invalidated, or caching disabled.
	if e == nil {
		e = &dirEntry{}
		c.entries[k] = e
	}
	c.misses.inc()
	if e.flight != nil {
		p.state = dirJoin
		p.flight = e.flight
		c.coalesced.inc()
		return p
	}
	e.flight = make(chan struct{})
	p.state = dirFetch
	p.flight = e.flight
	p.lead = true
	return p
}

// complete publishes a leader's fetch outcome and releases any waiting
// followers. On failure the entry keeps its last good data (degraded
// serving) but stays invalidated, so the next read retries.
func (c *dirCache) complete(peer, user string, apps []server.AppInfo, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[dirKey{peer: peer, user: user}]
	if e == nil {
		return // peer dropped mid-flight; dropPeer released the followers
	}
	if err == nil {
		e.apps = copyApps(apps)
		e.fetched = time.Now()
		e.jitter = ttlJitter()
	}
	e.lastErr = err
	if e.flight != nil {
		close(e.flight)
		e.flight = nil
	}
}

// resolve reads the post-flight outcome for a follower whose leader just
// completed: the fresh listing on success, the unavailable-marked
// fallback plus the leader's error otherwise.
func (c *dirCache) resolve(peer, user string) ([]server.AppInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[dirKey{peer: peer, user: user}]
	if e == nil {
		return nil, nil
	}
	if e.lastErr == nil && !e.fetched.IsZero() {
		return copyApps(e.apps), nil
	}
	return unavailableCopy(e.apps), e.lastErr
}

// invalidatePeer drops the freshness of every listing cached for a peer —
// an app-registered/app-closed event arrived from it (byEvent) or it just
// recovered from an outage, so anything cached predates the change. The
// data itself is retained as the degraded-mode fallback.
func (c *dirCache) invalidatePeer(peer string, byEvent bool) {
	var n uint64
	c.mu.Lock()
	for k, e := range c.entries {
		if k.peer == peer && !e.fetched.IsZero() {
			e.fetched = time.Time{}
			n++
		}
	}
	c.mu.Unlock()
	if n == 0 {
		return
	}
	if byEvent {
		c.eventInvalidations.add(n)
	} else {
		c.healthInvalidations.add(n)
	}
}

// Invalidate is the generic eager-invalidation entry point for callers
// outside the cache's own event and health hooks: the gossip layer calls
// it when an applied remote delta or a membership transition makes a
// peer's cached listings stale, and future subsystems can do the same
// without growing invalidatePeer's reason enum. Identical staleness
// semantics — data is kept as the degraded-mode fallback — but counted
// separately (peerInvalidations).
func (c *dirCache) Invalidate(peer string) {
	var n uint64
	c.mu.Lock()
	for k, e := range c.entries {
		if k.peer == peer && !e.fetched.IsZero() {
			e.fetched = time.Time{}
			n++
		}
	}
	c.mu.Unlock()
	c.peerInvalidations.add(n)
}

// dropPeer removes every listing cached for a peer that left the
// federation for good (lease lapsed past keep-through-miss). Open flights
// are released so no follower waits on a fetch that will never complete.
func (c *dirCache) dropPeer(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if k.peer != peer {
			continue
		}
		if e.flight != nil {
			close(e.flight)
			e.flight = nil
		}
		delete(c.entries, k)
	}
}

// stats snapshots the cache counters for GET /api/stats.
func (c *dirCache) stats() server.DirectoryStats {
	c.mu.Lock()
	entries := len(c.entries)
	c.mu.Unlock()
	return server.DirectoryStats{
		Entries:             entries,
		Hits:                c.hits.value(),
		StaleServes:         c.staleServes.value(),
		Misses:              c.misses.value(),
		Coalesced:           c.coalesced.value(),
		UnavailableServes:   c.unavailableServes.value(),
		EventInvalidations:  c.eventInvalidations.value(),
		HealthInvalidations: c.healthInvalidations.value(),
		PeerInvalidations:   c.peerInvalidations.value(),
	}
}
