package portal

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"discover/internal/app"
	"discover/internal/appproto"
	"discover/internal/server"
	"discover/internal/wire"
)

// testEnv runs a server, one application (pumped continuously) and the
// HTTP front end.
type testEnv struct {
	srv   *server.Server
	appID string
	base  string
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	s, err := server.New(server.Config{Name: "rutgers", Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ListenDaemon("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Auth().SetUserSecret("alice", "pw")
	s.Auth().SetUserSecret("bob", "pw")

	rt, err := app.NewRuntime(app.Config{
		Name: "wave", Kernel: app.NewSeismic1D(64), ComputeSteps: 2,
		Users: []app.UserGrant{
			{User: "alice", Privilege: "steer"},
			{User: "bob", Privilege: "interact"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	as, err := appproto.Dial(context.Background(), s.Daemon().Addr(), rt,
		appproto.WithPhaseDelay(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		as.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		as.Close()
	})

	ts := httptest.NewServer(s.HTTPHandler())
	t.Cleanup(ts.Close)
	deadline := time.Now().Add(2 * time.Second)
	for len(s.LocalAppIDs()) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	ids := s.LocalAppIDs()
	if len(ids) == 0 {
		t.Fatal("app never registered")
	}
	return &testEnv{srv: s, appID: ids[0], base: ts.URL}
}

func TestPortalLoginAndApps(t *testing.T) {
	env := newEnv(t)
	c := New(env.base)
	ctx := context.Background()
	if err := c.Login(ctx, "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if c.ClientID() == "" {
		t.Fatal("no client id")
	}
	apps, err := c.Apps(ctx)
	if err != nil || len(apps) != 1 {
		t.Fatalf("Apps = %v, %v", apps, err)
	}
	if apps[0].ID != env.appID {
		t.Errorf("app id = %q", apps[0].ID)
	}
	if err := c.Login(ctx, "alice", "wrong"); err == nil {
		t.Error("bad login succeeded")
	}
}

func TestPortalFullSteering(t *testing.T) {
	env := newEnv(t)
	c := New(env.base)
	ctx := context.Background()
	if err := c.Login(ctx, "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	priv, err := c.ConnectApp(ctx, env.appID)
	if err != nil || priv != "steer" {
		t.Fatalf("ConnectApp = %q, %v", priv, err)
	}

	var updates sync.Map
	c.StartPump(func(m *wire.Message) {
		if m.Kind == wire.KindUpdate {
			updates.Store(m.Seq, true)
		}
	})
	defer c.StopPump()

	granted, _, err := c.AcquireLock(ctx)
	if err != nil || !granted {
		t.Fatalf("AcquireLock = %v, %v", granted, err)
	}

	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	resp, err := c.Do(wctx, "set_param", map[string]string{"name": "source_freq", "value": "0.12"})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Kind != wire.KindResponse {
		t.Fatalf("steering response = %v (%s)", resp, resp.Text)
	}

	// get_param reflects the change.
	resp, err = c.Do(wctx, "get_param", map[string]string{"name": "source_freq"})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := resp.GetFloat("value"); !ok || v != 0.12 {
		t.Errorf("get_param = %v", resp)
	}

	// Updates flow through the pump.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		n := 0
		updates.Range(func(_, _ any) bool { n++; return true })
		if n > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	n := 0
	updates.Range(func(_, _ any) bool { n++; return true })
	if n == 0 {
		t.Error("no updates via pump")
	}

	if err := c.ReleaseLock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.DisconnectApp(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Logout(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestPortalLockConflictAndPrivilege(t *testing.T) {
	env := newEnv(t)
	ctx := context.Background()
	a, b := New(env.base), New(env.base)
	if err := a.Login(ctx, "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := b.Login(ctx, "bob", "pw"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ConnectApp(ctx, env.appID); err != nil {
		t.Fatal(err)
	}
	priv, err := b.ConnectApp(ctx, env.appID)
	if err != nil || priv != "interact" {
		t.Fatalf("bob priv = %q, %v", priv, err)
	}

	// bob (interact) cannot lock or steer.
	if _, _, err := b.AcquireLock(ctx); !IsDenied(err) {
		t.Errorf("bob lock err = %v", err)
	}
	if _, err := b.SetParam(ctx, "source_freq", 0.3); !IsDenied(err) {
		t.Errorf("bob steer err = %v", err)
	}
	// bob can interact.
	if _, err := b.Command(ctx, "sensor", map[string]string{"name": "metrics"}); err != nil {
		t.Errorf("bob sensor err = %v", err)
	}

	// alice steering without the lock conflicts.
	if _, err := a.SetParam(ctx, "source_freq", 0.3); !IsLockConflict(err) {
		t.Errorf("lockless steer err = %v", err)
	}
	if granted, _, _ := a.AcquireLock(ctx); !granted {
		t.Fatal("alice lock denied")
	}
	// bob sees alice as holder... through error text; just check conflict.
	if _, err := a.SetParam(ctx, "source_freq", 0.3); err != nil {
		t.Errorf("steer with lock: %v", err)
	}
}

func TestPortalCollaborationAndChat(t *testing.T) {
	env := newEnv(t)
	ctx := context.Background()
	a, b := New(env.base), New(env.base)
	a.Login(ctx, "alice", "pw")
	b.Login(ctx, "bob", "pw")
	a.ConnectApp(ctx, env.appID)
	b.ConnectApp(ctx, env.appID)

	chats := make(chan string, 8)
	b.StartPump(func(m *wire.Message) {
		if m.Kind == wire.KindChat {
			chats <- m.Text
		}
	})
	defer b.StopPump()

	if err := a.Chat(ctx, "hi bob"); err != nil {
		t.Fatal(err)
	}
	select {
	case text := <-chats:
		if text != "hi bob" {
			t.Errorf("chat = %q", text)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("chat never arrived")
	}

	if err := a.Whiteboard(ctx, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := a.ShareView(ctx, []byte("view")); err != nil {
		t.Fatal(err)
	}
	if err := a.SetCollaboration(ctx, false); err != nil {
		t.Fatal(err)
	}
	if err := a.JoinSubGroup(ctx, "viz"); err != nil {
		t.Fatal(err)
	}
	users, err := a.Users(ctx)
	if err != nil || len(users) != 2 {
		t.Errorf("Users = %v, %v", users, err)
	}
}

func TestPortalReplayAndRecords(t *testing.T) {
	env := newEnv(t)
	ctx := context.Background()
	c := New(env.base)
	c.Login(ctx, "alice", "pw")
	c.ConnectApp(ctx, env.appID)
	c.StartPump(nil)
	defer c.StopPump()

	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := c.Do(wctx, "status", nil); err != nil {
		t.Fatal(err)
	}
	rr, err := c.Replay(ctx, 0)
	if err != nil || len(rr.Entries) == 0 {
		t.Fatalf("Replay = %d entries, %v", len(rr.Entries), err)
	}
	recs, err := c.Records(ctx, "responses", nil)
	if err != nil || len(recs) == 0 {
		t.Fatalf("Records = %v, %v", recs, err)
	}
	if recs[0].Owner != "alice" {
		t.Errorf("record owner = %q", recs[0].Owner)
	}
	if _, err := c.Records(ctx, "nosuch", nil); err == nil {
		t.Error("unknown table accepted")
	}
}

// TestDetachableClient exercises the paper's "detachable client portals":
// disconnect, lose the client object entirely, re-attach elsewhere and
// find the session, its buffered messages and its application binding
// intact.
func TestDetachableClient(t *testing.T) {
	env := newEnv(t)
	ctx := context.Background()
	c := New(env.base)
	if err := c.Login(ctx, "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnectApp(ctx, env.appID); err != nil {
		t.Fatal(err)
	}
	c.StartPump(nil)
	handle := c.Detach() // stops the pump, session lives on at the server
	c = nil              // the old portal is gone

	// Messages keep accumulating in the server-side buffer while detached.
	time.Sleep(100 * time.Millisecond)

	// A fresh portal (think: another browser) resumes the session.
	resumed := New(env.base)
	app, priv, err := resumed.Attach(ctx, handle)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if app != env.appID || priv != "steer" {
		t.Errorf("resumed binding = %q/%q", app, priv)
	}
	if resumed.ClientID() != handle.ClientID {
		t.Errorf("resumed client id = %q", resumed.ClientID())
	}
	msgs, err := resumed.Poll(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var updates int
	for _, m := range msgs {
		if m.Kind == wire.KindUpdate {
			updates++
		}
	}
	if updates == 0 {
		t.Error("no updates buffered across the detach window")
	}
	// The resumed session can steer straight away (capability intact).
	resumed.StartPump(nil)
	defer resumed.StopPump()
	if granted, _, err := resumed.AcquireLock(ctx); err != nil || !granted {
		t.Fatalf("lock after attach: %v %v", granted, err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	resp, err := resumed.Do(wctx, "set_param", map[string]string{"name": "source_freq", "value": "0.21"})
	if err != nil || resp.Kind != wire.KindResponse {
		t.Fatalf("steer after attach: %v %v", resp, err)
	}

	// A forged token cannot attach.
	thief := New(env.base)
	bad := handle
	bad.Token = "forged"
	if _, _, err := thief.Attach(ctx, bad); err == nil {
		t.Error("attach with forged token succeeded")
	}
	// A valid token of a DIFFERENT user cannot attach to this session.
	other := New(env.base)
	if err := other.Login(ctx, "bob", "pw"); err != nil {
		t.Fatal(err)
	}
	cross := other.Detach()
	cross.ClientID = handle.ClientID // bob's token, alice's session
	if _, _, err := thief.Attach(ctx, cross); err == nil {
		t.Error("cross-user attach succeeded")
	}
}

func TestPortalHelpersAndOptions(t *testing.T) {
	env := newEnv(t)
	ctx := context.Background()
	hc := &http.Client{}
	c := New(env.base, WithHTTPClient(hc))
	if err := c.Login(ctx, "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if c.App() != "" {
		t.Error("App before connect nonempty")
	}
	if _, err := c.ConnectApp(ctx, env.appID); err != nil {
		t.Fatal(err)
	}
	if c.App() != env.appID {
		t.Errorf("App = %q", c.App())
	}
	c.StartPump(nil)
	defer c.StopPump()
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()

	// Status and GetParam wrappers.
	seq, err := c.Status(wctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitResponse(wctx, seq); err != nil {
		t.Fatal(err)
	}
	seq, err = c.GetParam(wctx, "source_freq")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.WaitResponse(wctx, seq)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := resp.GetFloat("value"); !ok || v != 0.05 {
		t.Errorf("GetParam = %v", resp)
	}

	// WaitResponse cancellation path.
	cctx, ccancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer ccancel()
	if _, err := c.WaitResponse(cctx, 999999); err == nil {
		t.Error("WaitResponse for unknown seq did not time out")
	}

	// API error text surfaces through the error value.
	bad := New(env.base)
	err = bad.Login(ctx, "alice", "nope")
	if err == nil || !IsDenied(err) || err.Error() == "" {
		t.Errorf("login error = %v", err)
	}
}

func TestPortalUnauthenticated(t *testing.T) {
	env := newEnv(t)
	ctx := context.Background()
	c := New(env.base)
	if _, err := c.Apps(ctx); err == nil {
		t.Error("Apps without login succeeded")
	}
	if _, err := c.Command(ctx, "status", nil); err == nil {
		t.Error("Command without login succeeded")
	}
	if _, err := c.Do(ctx, "status", nil); err == nil {
		t.Error("Do without pump/login succeeded")
	}
}

// TestPortalStreamEvents drives the full portal surface over the SSE
// streaming pump instead of the poll loop: request/response correlation
// (Do/WaitResponse), collaboration events, and update delivery all ride
// one long-lived stream connection.
func TestPortalStreamEvents(t *testing.T) {
	env := newEnv(t)
	ctx := context.Background()
	a, b := New(env.base), New(env.base)
	if err := a.Login(ctx, "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := b.Login(ctx, "bob", "pw"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ConnectApp(ctx, env.appID); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ConnectApp(ctx, env.appID); err != nil {
		t.Fatal(err)
	}

	chats := make(chan string, 8)
	var updates sync.Map
	a.StreamEvents(func(m *wire.Message) {
		switch m.Kind {
		case wire.KindChat:
			chats <- m.Text
		case wire.KindUpdate:
			updates.Store(m.Seq, true)
		}
	})
	defer a.StopPump()

	// Command round trip: the response arrives over the stream and wakes
	// the WaitResponse caller exactly as the poll pump would.
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if granted, _, err := a.AcquireLock(ctx); err != nil || !granted {
		t.Fatalf("AcquireLock = %v, %v", granted, err)
	}
	resp, err := a.Do(wctx, "set_param", map[string]string{"name": "source_freq", "value": "0.17"})
	if err != nil || resp.Kind != wire.KindResponse {
		t.Fatalf("Do over stream: %v, %v", resp, err)
	}

	// Collaboration events flow through too.
	if err := b.Chat(ctx, "hi alice"); err != nil {
		t.Fatal(err)
	}
	select {
	case text := <-chats:
		if text != "hi alice" {
			t.Errorf("chat = %q", text)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("chat never arrived over the stream")
	}

	if !a.Streaming() {
		t.Error("Streaming() = false while the SSE connection is live")
	}

	// Updates accumulate without any polling.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		n := 0
		updates.Range(func(_, _ any) bool { n++; return true })
		if n > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	n := 0
	updates.Range(func(_, _ any) bool { n++; return true })
	if n == 0 {
		t.Error("no updates via stream")
	}
}

// TestPortalStreamFallback points StreamEvents at a domain whose edge
// predates the streaming route (the mux 404s it). The portal must degrade
// to the poll pump transparently: same dispatch semantics, Streaming()
// stays false, StopPump still tears it down.
func TestPortalStreamFallback(t *testing.T) {
	env := newEnv(t)
	// A pre-v6 edge: every /stream route is unknown to the mux.
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/stream") {
			http.NotFound(w, r)
			return
		}
		env.srv.HTTPHandler().ServeHTTP(w, r)
	}))
	defer legacy.Close()

	ctx := context.Background()
	c := New(legacy.URL)
	if err := c.Login(ctx, "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnectApp(ctx, env.appID); err != nil {
		t.Fatal(err)
	}
	c.StreamEvents(nil)
	defer c.StopPump()

	// The command round trip works over the polling fallback.
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if granted, _, err := c.AcquireLock(ctx); err != nil || !granted {
		t.Fatalf("AcquireLock = %v, %v", granted, err)
	}
	resp, err := c.Do(wctx, "set_param", map[string]string{"name": "source_freq", "value": "0.19"})
	if err != nil || resp.Kind != wire.KindResponse {
		t.Fatalf("Do over fallback: %v, %v", resp, err)
	}
	if c.Streaming() {
		t.Error("Streaming() = true against a server with no stream route")
	}
}

// TestPortalStreamReconnects severs the live SSE connection out from
// under the portal and proves the auto-reconnect loop resumes delivery:
// events published after the cut still arrive, spliced by the resume
// token rather than lost or duplicated.
func TestPortalStreamReconnects(t *testing.T) {
	env := newEnv(t)
	// A second front end to the same server whose client connections the
	// test can sever on demand.
	ts := httptest.NewServer(env.srv.HTTPHandler())
	defer ts.Close()

	ctx := context.Background()
	a, b := New(ts.URL), New(ts.URL)
	if err := a.Login(ctx, "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := b.Login(ctx, "bob", "pw"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ConnectApp(ctx, env.appID); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ConnectApp(ctx, env.appID); err != nil {
		t.Fatal(err)
	}

	chats := make(chan string, 16)
	a.StreamEvents(func(m *wire.Message) {
		if m.Kind == wire.KindChat {
			chats <- m.Text
		}
	})
	defer a.StopPump()

	recv := func(want string) {
		t.Helper()
		for {
			select {
			case text := <-chats:
				if text == want {
					return
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("chat %q never arrived", want)
			}
		}
	}
	if err := b.Chat(ctx, "before"); err != nil {
		t.Fatal(err)
	}
	recv("before")

	// Sever every connection under the portal's feet; the next chat must
	// still arrive via the reconnect (carrying the resume token).
	ts.CloseClientConnections()
	if err := b.Chat(ctx, "after"); err != nil {
		t.Fatal(err)
	}
	recv("after")
}
