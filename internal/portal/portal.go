// Package portal is the client-side library for DISCOVER web portals: the
// thin HTTP client the paper's browser applets correspond to. It speaks
// the poll-and-pull protocol (commands are acknowledged immediately;
// responses and updates arrive by draining the server-side FIFO buffer)
// and runs the "dedicated thread" for collaboration as a poll pump that
// dispatches messages by kind — exactly how DISCOVER clients discriminated
// Response, Error and Update objects.
package portal

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"discover/internal/server"
	"discover/internal/wire"
)

// Client is one portal session against a DISCOVER server.
type Client struct {
	base string
	hc   *http.Client

	mu       sync.Mutex
	clientID string
	token    string
	server   string
	user     string
	app      string

	pumpMu    sync.Mutex
	pending   map[uint64]chan *wire.Message
	onEvent   func(*wire.Message)
	pumping   bool
	pumpStop  chan struct{}
	pumpDone  chan struct{}
	streaming bool // delivery is currently riding an open SSE stream

	lastEventID atomic.Uint64 // newest SSE id processed (resume token)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the HTTP client (e.g. one whose transport
// dials through netsim).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New creates a portal client for a server's base URL
// (e.g. "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    baseURL,
		hc:      http.DefaultClient,
		pending: make(map[uint64]chan *wire.Message),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a decoded non-2xx portal response: the /api/v1 uniform
// error envelope (code, message, retry hint) plus the transport status.
// errors.Is matches it against the typed sentinels below by code, so
// callers branch on errors.Is(err, portal.ErrRateLimited) rather than
// parsing strings or status numbers.
type APIError struct {
	Status     int           // HTTP status
	Code       string        // machine-readable code from the envelope
	Message    string        // human-readable detail
	RetryAfter time.Duration // server's retry hint (0 if none)
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("portal: HTTP %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("portal: HTTP %d: %s", e.Status, e.Message)
}

// sentinelError is the identity errors.Is compares APIErrors against.
type sentinelError struct{ code, msg string }

func (e *sentinelError) Error() string { return e.msg }

// Is makes an APIError match the sentinel carrying its code.
func (e *APIError) Is(target error) bool {
	s, ok := target.(*sentinelError)
	return ok && s.code == e.Code
}

// Typed sentinels mirroring the server's error-code registry (API.md).
// Compare with errors.Is; the matched APIError (via errors.As) carries
// the message and retry hint.
var (
	ErrBadRequest      error = &sentinelError{"bad_request", "portal: bad request"}
	ErrUnauthorized    error = &sentinelError{"unauthorized", "portal: unauthorized"}
	ErrSessionNotFound error = &sentinelError{"session_not_found", "portal: session not found"}
	ErrForbidden       error = &sentinelError{"forbidden", "portal: forbidden"}
	ErrAppNotFound     error = &sentinelError{"app_not_found", "portal: application not found"}
	ErrNotConnected    error = &sentinelError{"not_connected", "portal: not connected to an application"}
	ErrLockHeld        error = &sentinelError{"lock_held", "portal: steering lock held"}
	ErrRateLimited     error = &sentinelError{"rate_limited", "portal: rate limited"}
	ErrOverloaded      error = &sentinelError{"overloaded", "portal: server overloaded"}
	ErrShuttingDown    error = &sentinelError{"shutting_down", "portal: server shutting down"}
	ErrPeerDown        error = &sentinelError{"peer_down", "portal: peer server down"}
	ErrPeerSuspect     error = &sentinelError{"peer_suspect", "portal: peer server suspect"}
	ErrNotFound        error = &sentinelError{"not_found", "portal: not found"}
	ErrCollabDisabled  error = &sentinelError{"collab_disabled", "portal: collaboration disabled"}
	ErrGroupNotFound   error = &sentinelError{"group_not_found", "portal: collaboration group not found"}
	ErrBadWatermark    error = &sentinelError{"bad_watermark", "portal: whiteboard watermark out of range"}
	ErrInternal        error = &sentinelError{"internal", "portal: internal server error"}
)

// RetryAfter extracts the server's retry hint from a shed-request error
// (ErrRateLimited, ErrOverloaded, ErrShuttingDown). ok is false when err
// carries no hint.
func RetryAfter(err error) (d time.Duration, ok bool) {
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		return ae.RetryAfter, true
	}
	return 0, false
}

// IsDenied reports whether err is a privilege failure.
func IsDenied(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusForbidden
}

// IsLockConflict reports whether err is a steering-lock conflict.
func IsLockConflict(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusConflict
}

// statusCode maps an HTTP status to a registry code, for responses from
// servers predating the envelope (legacy {"error":"..."} bodies).
func statusCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "lock_held"
	case http.StatusTooManyRequests:
		return "rate_limited"
	case http.StatusServiceUnavailable:
		return "shutting_down"
	default:
		return "internal"
	}
}

// decodeAPIError turns a non-2xx response into an *APIError, accepting
// both the /api/v1 envelope and the legacy flat {"error":"message"}.
func decodeAPIError(resp *http.Response) error {
	ae := &APIError{Status: resp.StatusCode}
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err == nil && len(env.Error) > 0 {
		var body struct {
			Code         string `json:"code"`
			Message      string `json:"message"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		}
		if err := json.Unmarshal(env.Error, &body); err == nil && body.Code != "" {
			ae.Code = body.Code
			ae.Message = body.Message
			ae.RetryAfter = time.Duration(body.RetryAfterMS) * time.Millisecond
		} else {
			var msg string
			if json.Unmarshal(env.Error, &msg) == nil {
				ae.Message = msg
			}
		}
	}
	if ae.Code == "" {
		ae.Code = statusCode(resp.StatusCode)
	}
	return ae
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// ClientID returns the server-assigned client id ("" before Login).
func (c *Client) ClientID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clientID
}

// App returns the connected application id ("" if none).
func (c *Client) App() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.app
}

// Login performs level-one authentication.
func (c *Client) Login(ctx context.Context, user, secret string) error {
	var lr server.LoginResponse
	if err := c.post(ctx, "/api/v1/login", server.LoginRequest{User: user, Secret: secret}, &lr); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clientID = lr.ClientID
	c.token = lr.Token
	c.server = lr.Server
	c.user = user
	return nil
}

// Handle captures the session's identity so a detached portal can resume
// it later with Attach — DISCOVER portals are detachable: the session,
// its buffer and its application binding live at the server.
type Handle struct {
	ClientID string `json:"clientId"`
	Token    string `json:"token"`
	Server   string `json:"server"`
	User     string `json:"user"`
}

// Detach stops the pump and returns the handle for a later Attach. The
// server-side session stays alive (until the idle janitor reaps it).
func (c *Client) Detach() Handle {
	c.StopPump()
	c.mu.Lock()
	defer c.mu.Unlock()
	return Handle{ClientID: c.clientID, Token: c.token, Server: c.server, User: c.user}
}

// Attach resumes a detached session on this client and reports the
// session's application binding and privilege ("" when not connected).
func (c *Client) Attach(ctx context.Context, h Handle) (app, privilege string, err error) {
	var ar server.AttachResponse
	err = c.post(ctx, "/api/v1/attach", server.AttachRequest{ClientID: h.ClientID, Token: h.Token}, &ar)
	if err != nil {
		return "", "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clientID = h.ClientID
	c.token = h.Token
	c.server = h.Server
	c.user = ar.User
	c.app = ar.App
	return ar.App, ar.Privilege, nil
}

// Logout ends the session (stopping the pump first).
func (c *Client) Logout(ctx context.Context) error {
	c.StopPump()
	id := c.ClientID()
	if id == "" {
		return nil
	}
	err := c.post(ctx, "/api/v1/logout", map[string]string{"clientId": id}, nil)
	c.mu.Lock()
	c.clientID, c.token, c.app = "", "", ""
	c.mu.Unlock()
	return err
}

// Apps lists all applications (local and remote) visible to the user.
func (c *Client) Apps(ctx context.Context) ([]server.AppInfo, error) {
	var ar server.AppsResponse
	if err := c.get(ctx, "/api/v1/apps?client="+url.QueryEscape(c.ClientID()), &ar); err != nil {
		return nil, err
	}
	return ar.Apps, nil
}

// ConnectApp performs level-two authorization and joins the application's
// collaboration group; it returns the granted privilege name.
func (c *Client) ConnectApp(ctx context.Context, appID string) (string, error) {
	var cr server.ConnectResponse
	err := c.post(ctx, "/api/v1/connect", server.ConnectRequest{ClientID: c.ClientID(), App: appID}, &cr)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	c.app = appID
	c.mu.Unlock()
	return cr.Privilege, nil
}

// DisconnectApp leaves the application.
func (c *Client) DisconnectApp(ctx context.Context) error {
	err := c.post(ctx, "/api/v1/disconnect", map[string]string{"clientId": c.ClientID()}, nil)
	c.mu.Lock()
	c.app = ""
	c.mu.Unlock()
	return err
}

// Command submits a command; the response arrives asynchronously (see
// WaitResponse or the pump). It returns the command sequence number.
func (c *Client) Command(ctx context.Context, op string, params map[string]string) (uint64, error) {
	var cr server.CommandResponse
	err := c.post(ctx, "/api/v1/command", server.CommandRequest{
		ClientID: c.ClientID(), Op: op, Params: params,
	}, &cr)
	return cr.Seq, err
}

// SetParam issues a set_param steering command.
func (c *Client) SetParam(ctx context.Context, name string, value float64) (uint64, error) {
	return c.Command(ctx, "set_param", map[string]string{
		"name": name, "value": strconv.FormatFloat(value, 'g', -1, 64),
	})
}

// GetParam issues a get_param query.
func (c *Client) GetParam(ctx context.Context, name string) (uint64, error) {
	return c.Command(ctx, "get_param", map[string]string{"name": name})
}

// Status issues a status query.
func (c *Client) Status(ctx context.Context) (uint64, error) {
	return c.Command(ctx, "status", nil)
}

// Poll drains up to max messages, long-polling up to wait.
func (c *Client) Poll(ctx context.Context, max int, wait time.Duration) ([]*wire.Message, error) {
	var pr server.PollResponse
	path := fmt.Sprintf("/api/v1/poll?client=%s&max=%d&waitms=%d",
		url.QueryEscape(c.ClientID()), max, wait.Milliseconds())
	if err := c.get(ctx, path, &pr); err != nil {
		return nil, err
	}
	return pr.Messages, nil
}

// AcquireLock requests the steering lock; granted=false reports the
// current holder.
func (c *Client) AcquireLock(ctx context.Context) (granted bool, holder string, err error) {
	var lr server.LockResponse
	err = c.post(ctx, "/api/v1/lock", server.LockRequestBody{ClientID: c.ClientID(), Acquire: true}, &lr)
	return lr.Granted, lr.Holder, err
}

// ReleaseLock gives the steering lock back.
func (c *Client) ReleaseLock(ctx context.Context) error {
	return c.post(ctx, "/api/v1/lock", server.LockRequestBody{ClientID: c.ClientID(), Acquire: false}, nil)
}

// Chat sends a chat line to the collaboration group.
func (c *Client) Chat(ctx context.Context, text string) error {
	return c.post(ctx, "/api/v1/chat", server.ChatRequest{ClientID: c.ClientID(), Text: text}, nil)
}

// Whiteboard sends a whiteboard stroke.
func (c *Client) Whiteboard(ctx context.Context, stroke []byte) error {
	return c.post(ctx, "/api/v1/whiteboard", server.WhiteboardRequest{ClientID: c.ClientID(), Stroke: stroke}, nil)
}

// ShareView explicitly shares a view with the sub-group.
func (c *Client) ShareView(ctx context.Context, view []byte) error {
	return c.post(ctx, "/api/v1/share", server.ShareRequest{ClientID: c.ClientID(), View: view}, nil)
}

// SetCollaboration flips collaboration mode.
func (c *Client) SetCollaboration(ctx context.Context, enabled bool) error {
	return c.post(ctx, "/api/v1/collab", server.CollabRequest{ClientID: c.ClientID(), Enabled: &enabled}, nil)
}

// JoinSubGroup moves into a named sub-group ("" = main group).
func (c *Client) JoinSubGroup(ctx context.Context, sub string) error {
	return c.post(ctx, "/api/v1/collab", server.CollabRequest{ClientID: c.ClientID(), Sub: &sub}, nil)
}

// CollabInfo reads the typed collaboration resource: this session's
// mode, the local membership view, and the converged CRDT view of the
// whole cross-domain group with its replication watermarks.
func (c *Client) CollabInfo(ctx context.Context) (server.CollabInfoResponse, error) {
	var cr server.CollabInfoResponse
	err := c.get(ctx, "/api/v1/session/"+url.PathEscape(c.ClientID())+"/collab", &cr)
	return cr, err
}

// WhiteboardSince replays whiteboard strokes past a watermark (0 =
// everything). Pass the returned Watermark back to resume incrementally,
// the way Last-Event-ID resumes the SSE stream.
func (c *Client) WhiteboardSince(ctx context.Context, from uint64) (server.WhiteboardResponse, error) {
	var wr server.WhiteboardResponse
	path := fmt.Sprintf("/api/v1/session/%s/whiteboard?from=%d", url.PathEscape(c.ClientID()), from)
	err := c.get(ctx, path, &wr)
	return wr, err
}

// Replay fetches the archived interaction log from a sequence number.
func (c *Client) Replay(ctx context.Context, from uint64) (server.ReplayResponse, error) {
	var rr server.ReplayResponse
	path := fmt.Sprintf("/api/v1/replay?client=%s&from=%d", url.QueryEscape(c.ClientID()), from)
	err := c.get(ctx, path, &rr)
	return rr, err
}

// Records queries the record database.
func (c *Client) Records(ctx context.Context, table string, filter map[string]string) ([]server.RecordView, error) {
	q := url.Values{}
	q.Set("client", c.ClientID())
	q.Set("table", table)
	for k, v := range filter {
		q.Set("f."+k, v)
	}
	var rr server.RecordsResponse
	if err := c.get(ctx, "/api/v1/records?"+q.Encode(), &rr); err != nil {
		return nil, err
	}
	return rr.Records, nil
}

// Users lists users logged in at the server.
func (c *Client) Users(ctx context.Context) ([]string, error) {
	var ur server.UsersResponse
	if err := c.get(ctx, "/api/v1/users?client="+url.QueryEscape(c.ClientID()), &ur); err != nil {
		return nil, err
	}
	return ur.Users, nil
}

// ---------------------------------------------------------------------------
// The poll pump: the client-side collaboration thread.
// ---------------------------------------------------------------------------

// StartPump begins background polling. Responses and errors matching a
// WaitResponse call wake that caller; everything else (updates, chat,
// whiteboard, events, unsolicited responses) goes to onEvent (which may
// be nil). Safe to call once per client.
func (c *Client) StartPump(onEvent func(*wire.Message)) {
	c.pumpMu.Lock()
	defer c.pumpMu.Unlock()
	if c.pumping {
		return
	}
	c.pumping = true
	c.onEvent = onEvent
	c.pumpStop = make(chan struct{})
	c.pumpDone = make(chan struct{})
	go c.pumpLoop(c.pumpStop, c.pumpDone)
}

// StopPump stops background delivery (either the poll pump or the
// streaming loop).
func (c *Client) StopPump() {
	c.pumpMu.Lock()
	if !c.pumping {
		c.pumpMu.Unlock()
		return
	}
	c.pumping = false
	stop, done := c.pumpStop, c.pumpDone
	c.pumpMu.Unlock()
	close(stop)
	<-done
}

func (c *Client) pumpLoop(stop, done chan struct{}) {
	defer close(done)
	c.pumpRun(stop)
}

// pumpRun is the polling delivery body, shared by StartPump and the
// streaming loop's pre-v6 fallback. It returns when stop is closed.
func (c *Client) pumpRun(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		msgs, err := c.Poll(ctx, 64, 1*time.Second)
		cancel()
		if err != nil {
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Millisecond):
				continue
			}
		}
		for _, m := range msgs {
			c.dispatch(m)
		}
	}
}

// ---------------------------------------------------------------------------
// The streaming pump: SSE delivery with auto-resume.
// ---------------------------------------------------------------------------

// streamBackoffMax caps the reconnect backoff between stream attempts.
const streamBackoffMax = 2 * time.Second

// StreamEvents begins background delivery over the server's SSE stream
// (GET /api/v1/session/{id}/stream) instead of the poll loop. Dispatch
// semantics are identical to StartPump: responses and errors matching a
// WaitResponse caller wake that caller, everything else goes to onEvent.
//
// The loop reconnects automatically, presenting the last event id it
// processed as a resume token so the server splices the gap from its
// replay ring (or reports the loss as an events-lost marker, which is
// delivered to onEvent like any other event). Against a server that
// predates the streaming edge (404/405 on the stream route) it degrades
// permanently to the polling pump. StopPump stops either mode.
func (c *Client) StreamEvents(onEvent func(*wire.Message)) {
	c.pumpMu.Lock()
	defer c.pumpMu.Unlock()
	if c.pumping {
		return
	}
	c.pumping = true
	c.onEvent = onEvent
	c.pumpStop = make(chan struct{})
	c.pumpDone = make(chan struct{})
	go c.streamLoop(c.pumpStop, c.pumpDone)
}

// LastEventID reports the newest SSE sequence number the streaming pump
// has processed — the resume token it presents on reconnect. Tests use
// it to assert a client resumed (spliced) rather than restarted after a
// domain recovery; 0 means no identified event has arrived yet.
func (c *Client) LastEventID() uint64 { return c.lastEventID.Load() }

// Streaming reports whether delivery currently rides an open SSE stream
// (false before the first connect, after falling back to polling, or
// between reconnect attempts).
func (c *Client) Streaming() bool {
	c.pumpMu.Lock()
	defer c.pumpMu.Unlock()
	return c.streaming
}

func (c *Client) setStreaming(on bool) {
	c.pumpMu.Lock()
	c.streaming = on
	c.pumpMu.Unlock()
}

func (c *Client) streamLoop(stop, done chan struct{}) {
	defer close(done)
	defer c.setStreaming(false)
	var lastID uint64
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-stop:
			return
		default:
		}
		delivered, retry, wait := c.streamOnce(stop, &lastID)
		if !retry {
			// The domain has no streaming edge (pre-v6 server): degrade to
			// the poll pump for the rest of this session.
			c.pumpRun(stop)
			return
		}
		if delivered {
			backoff = 100 * time.Millisecond
		}
		if wait < backoff {
			wait = backoff
		}
		select {
		case <-stop:
			return
		case <-time.After(wait):
		}
		if backoff *= 2; backoff > streamBackoffMax {
			backoff = streamBackoffMax
		}
	}
}

// streamOnce opens one stream connection and consumes it until it ends.
// delivered reports whether any event arrived (resets the backoff), retry
// whether the stream route is worth another attempt, and wait a server-
// supplied floor on the reconnect delay (shed retry hints).
func (c *Client) streamOnce(stop chan struct{}, lastID *uint64) (delivered, retry bool, wait time.Duration) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	u := c.base + "/api/v1/session/" + url.PathEscape(c.ClientID()) + "/stream"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, true, 0
	}
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, true, 0
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed:
		// The mux itself rejected the route: a server from before the
		// streaming edge existed. (A dead session is 401, not 404.)
		return false, false, 0
	case resp.StatusCode != http.StatusOK:
		err := decodeAPIError(resp)
		if d, ok := RetryAfter(err); ok {
			return false, true, d
		}
		return false, true, 0
	}

	c.setStreaming(true)
	defer c.setStreaming(false)

	// SSE framing: "id:" and "data:" lines accumulate into one event,
	// a blank line dispatches it, ":" lines are heartbeat comments.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var id uint64
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) > 0 {
				var m wire.Message
				if json.Unmarshal(data, &m) == nil {
					if id > 0 {
						*lastID = id
						c.lastEventID.Store(id)
					}
					delivered = true
					c.dispatch(&m)
				}
			}
			id, data = 0, nil
		case strings.HasPrefix(line, "id:"):
			id, _ = strconv.ParseUint(strings.TrimSpace(line[len("id:"):]), 10, 64)
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(line[len("data:"):])...)
		}
	}
	// The server closed the stream: a shed after buffer-overflow, a
	// drain, or a network fault. Reconnect with the resume token.
	return delivered, true, 0
}

func (c *Client) dispatch(m *wire.Message) {
	if m.Kind == wire.KindResponse || m.Kind == wire.KindError {
		c.pumpMu.Lock()
		ch, ok := c.pending[m.Seq]
		if ok && m.Client == c.clientID {
			delete(c.pending, m.Seq)
			c.pumpMu.Unlock()
			ch <- m
			return
		}
		c.pumpMu.Unlock()
	}
	c.pumpMu.Lock()
	h := c.onEvent
	c.pumpMu.Unlock()
	if h != nil {
		h(m)
	}
}

// WaitResponse blocks until the response to command seq arrives via the
// pump (StartPump must be active).
func (c *Client) WaitResponse(ctx context.Context, seq uint64) (*wire.Message, error) {
	ch := make(chan *wire.Message, 1)
	c.pumpMu.Lock()
	if !c.pumping {
		c.pumpMu.Unlock()
		return nil, fmt.Errorf("portal: WaitResponse requires StartPump")
	}
	c.pending[seq] = ch
	c.pumpMu.Unlock()
	select {
	case m := <-ch:
		return m, nil
	case <-ctx.Done():
		c.pumpMu.Lock()
		delete(c.pending, seq)
		c.pumpMu.Unlock()
		return nil, ctx.Err()
	}
}

// Do submits a command and waits for its response (pump must be running).
func (c *Client) Do(ctx context.Context, op string, params map[string]string) (*wire.Message, error) {
	seq, err := c.Command(ctx, op, params)
	if err != nil {
		return nil, err
	}
	return c.WaitResponse(ctx, seq)
}
