package userdir

import (
	"context"
	"reflect"
	"testing"

	"discover/internal/orb"
)

func TestDirectoryLocal(t *testing.T) {
	d := New()
	d.Register("vijay", "secret1", map[string]string{"org": "rutgers"})
	d.Register("manish", "secret2", nil)

	if !d.Verify("vijay", "secret1") {
		t.Error("valid secret rejected")
	}
	if d.Verify("vijay", "wrong") {
		t.Error("wrong secret accepted")
	}
	if d.Verify("ghost", "x") {
		t.Error("unknown user accepted")
	}
	if !d.Exists("manish") || d.Exists("ghost") {
		t.Error("Exists wrong")
	}
	attrs, ok := d.Attributes("vijay")
	if !ok || attrs["org"] != "rutgers" {
		t.Errorf("Attributes = %v, %v", attrs, ok)
	}
	attrs["org"] = "tampered"
	if again, _ := d.Attributes("vijay"); again["org"] != "rutgers" {
		t.Error("attributes aliased")
	}
	if _, ok := d.Attributes("ghost"); ok {
		t.Error("Attributes for unknown user")
	}
	if got := d.Users(); !reflect.DeepEqual(got, []string{"manish", "vijay"}) {
		t.Errorf("Users = %v", got)
	}

	// Re-register replaces the secret.
	d.Register("vijay", "rotated", nil)
	if d.Verify("vijay", "secret1") || !d.Verify("vijay", "rotated") {
		t.Error("rotation failed")
	}
	d.Remove("vijay")
	if d.Exists("vijay") {
		t.Error("Remove failed")
	}
}

func TestDirectoryRemote(t *testing.T) {
	host := orb.New()
	if err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	d := New()
	d.Register("alice", "pw", map[string]string{"role": "pi"})
	host.Register(Key, d.Servant())

	c := NewClient(orb.New(), host.Ref(Key))
	ctx := context.Background()

	ok, err := c.Verify(ctx, "alice", "pw")
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v", ok, err)
	}
	ok, err = c.Verify(ctx, "alice", "nope")
	if err != nil || ok {
		t.Errorf("wrong secret Verify = %v, %v", ok, err)
	}
	ok, err = c.Exists(ctx, "alice")
	if err != nil || !ok {
		t.Errorf("Exists = %v, %v", ok, err)
	}
	attrs, ok, err := c.Attributes(ctx, "alice")
	if err != nil || !ok || attrs["role"] != "pi" {
		t.Errorf("Attributes = %v, %v, %v", attrs, ok, err)
	}
	users, err := c.Users(ctx)
	if err != nil || len(users) != 1 {
		t.Errorf("Users = %v, %v", users, err)
	}
}
