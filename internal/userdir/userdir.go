// Package userdir implements the centralized user directory that §6.3 of
// the paper proposes as the way past per-server authentication: "One way
// to get around this problem is to have a centralized directory service
// like the GIS that maintains user-IDs and other global information. All
// the servers in the system can now use this directory service."
//
// The directory holds user-ids, their login secrets (salted hashes) and
// free-form attributes. It is exposed as an ORB servant (typically
// co-hosted with the trader) so every DISCOVER server in a federation can
// verify a login for a user who has no home credential at that server.
// Secrets transit the middle tier in the clear, as they did inside the
// paper's SSL-protected server network; transport security is the
// deployment's concern, not this package's.
package userdir

import (
	"context"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"sort"
	"sync"

	"discover/internal/orb"
)

// Key is the well-known object key of a user directory servant.
const Key = "UserDirectory"

type entry struct {
	salt  []byte
	hash  []byte
	attrs map[string]string
}

// Directory is the central user-id registry.
type Directory struct {
	mu    sync.RWMutex
	users map[string]*entry
}

// New returns an empty directory.
func New() *Directory { return &Directory{users: make(map[string]*entry)} }

func hashSecret(salt []byte, secret string) []byte {
	h := sha256.Sum256(append(append([]byte{}, salt...), secret...))
	return h[:]
}

// Register adds or replaces a user with a login secret and attributes.
func (d *Directory) Register(user, secret string, attrs map[string]string) {
	salt := make([]byte, 16)
	if _, err := rand.Read(salt); err != nil {
		panic("userdir: cannot read random salt: " + err.Error())
	}
	cp := make(map[string]string, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.users[user] = &entry{salt: salt, hash: hashSecret(salt, secret), attrs: cp}
}

// Remove deletes a user.
func (d *Directory) Remove(user string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.users, user)
}

// Verify checks a user's secret.
func (d *Directory) Verify(user, secret string) bool {
	d.mu.RLock()
	e, ok := d.users[user]
	d.mu.RUnlock()
	if !ok {
		return false
	}
	return hmac.Equal(e.hash, hashSecret(e.salt, secret))
}

// Exists reports whether the user is registered.
func (d *Directory) Exists(user string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.users[user]
	return ok
}

// Attributes returns a copy of a user's attributes.
func (d *Directory) Attributes(user string) (map[string]string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.users[user]
	if !ok {
		return nil, false
	}
	out := make(map[string]string, len(e.attrs))
	for k, v := range e.attrs {
		out[k] = v
	}
	return out, true
}

// Users lists registered user-ids, sorted.
func (d *Directory) Users() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.users))
	for u := range d.users {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Wire types.
type (
	verifyReq  struct{ User, Secret string }
	verifyResp struct{ OK bool }
	existsReq  struct{ User string }
	attrsReq   struct{ User string }
	attrsResp  struct {
		OK    bool
		Attrs map[string]string
	}
	listReq  struct{}
	listResp struct{ Users []string }
)

// Servant exposes the directory over the ORB. Registration is a local,
// administrative operation and is deliberately not remoted.
func (d *Directory) Servant() orb.Servant {
	return orb.MethodMap{
		"verify": orb.Handler(func(r verifyReq) (verifyResp, error) {
			return verifyResp{OK: d.Verify(r.User, r.Secret)}, nil
		}),
		"exists": orb.Handler(func(r existsReq) (verifyResp, error) {
			return verifyResp{OK: d.Exists(r.User)}, nil
		}),
		"attributes": orb.Handler(func(r attrsReq) (attrsResp, error) {
			attrs, ok := d.Attributes(r.User)
			return attrsResp{OK: ok, Attrs: attrs}, nil
		}),
		"list": orb.Handler(func(listReq) (listResp, error) {
			return listResp{Users: d.Users()}, nil
		}),
	}
}

// Client is the remote stub servers use to consult the directory.
type Client struct {
	orb *orb.ORB
	ref orb.ObjRef
}

// NewClient returns a stub bound to the directory at ref.
func NewClient(o *orb.ORB, ref orb.ObjRef) *Client { return &Client{orb: o, ref: ref} }

// Verify checks a user's secret remotely.
func (c *Client) Verify(ctx context.Context, user, secret string) (bool, error) {
	var resp verifyResp
	if err := c.orb.Invoke(ctx, c.ref, "verify", verifyReq{User: user, Secret: secret}, &resp); err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Exists checks user registration remotely.
func (c *Client) Exists(ctx context.Context, user string) (bool, error) {
	var resp verifyResp
	if err := c.orb.Invoke(ctx, c.ref, "exists", existsReq{User: user}, &resp); err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Attributes fetches a user's attributes remotely.
func (c *Client) Attributes(ctx context.Context, user string) (map[string]string, bool, error) {
	var resp attrsResp
	if err := c.orb.Invoke(ctx, c.ref, "attributes", attrsReq{User: user}, &resp); err != nil {
		return nil, false, err
	}
	return resp.Attrs, resp.OK, nil
}

// Users lists registered user-ids remotely.
func (c *Client) Users(ctx context.Context) ([]string, error) {
	var resp listResp
	if err := c.orb.Invoke(ctx, c.ref, "list", listReq{}, &resp); err != nil {
		return nil, err
	}
	return resp.Users, nil
}
