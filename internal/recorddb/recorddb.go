// Package recorddb is the relational-database stand-in of §6.3: generated
// data is stored as records under the ownership of the user who caused
// them to exist, with read-only grants for other authorized users.
//
// Placement follows the paper: data produced in response to a client's
// request is written at the client's local server under that user;
// periodic application data is written at the application's host server
// under the application owner, with read-only access for every user on
// the application's ACL. Clients can never create records at a remote
// server.
package recorddb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors.
var (
	ErrNoTable  = errors.New("recorddb: no such table")
	ErrNoRecord = errors.New("recorddb: no such record")
	ErrDenied   = errors.New("recorddb: access denied")
)

// Record is one stored row.
type Record struct {
	ID      string
	Owner   string
	Created time.Time
	Fields  map[string]string
	readers map[string]bool
}

// CanRead reports whether user may read the record.
func (r *Record) CanRead(user string) bool {
	return user == r.Owner || r.readers[user]
}

// Readers lists users with read-only grants, sorted.
func (r *Record) Readers() []string {
	out := make([]string, 0, len(r.readers))
	for u := range r.readers {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Table is one named collection of records.
type Table struct {
	name string

	mu      sync.RWMutex
	records map[string]*Record
	order   []string
	nextID  uint64
}

// DB is a server's record store.
type DB struct {
	mu     sync.Mutex
	tables map[string]*Table
}

// New returns an empty store.
func New() *DB { return &DB{tables: make(map[string]*Table)} }

// Table returns a table, creating it on first use.
func (db *DB) Table(name string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		t = &Table{name: name, records: make(map[string]*Record)}
		db.tables[name] = t
	}
	return t
}

// Lookup returns an existing table.
func (db *DB) Lookup(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, ErrNoTable
	}
	return t, nil
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert creates a record owned by owner with read-only grants for
// readers, returning its id.
func (t *Table) Insert(owner string, fields map[string]string, readers []string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := fmt.Sprintf("%s-%d", t.name, t.nextID)
	cp := make(map[string]string, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	rs := make(map[string]bool, len(readers))
	for _, u := range readers {
		if u != "" {
			rs[u] = true
		}
	}
	t.records[id] = &Record{ID: id, Owner: owner, Created: time.Now(), Fields: cp, readers: rs}
	t.order = append(t.order, id)
	return id
}

// Get returns a record if user may read it. The returned record's Fields
// are a copy.
func (t *Table) Get(user, id string) (Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.records[id]
	if !ok {
		return Record{}, ErrNoRecord
	}
	if !r.CanRead(user) {
		return Record{}, ErrDenied
	}
	return r.copyOut(), nil
}

func (r *Record) copyOut() Record {
	cp := *r
	cp.Fields = make(map[string]string, len(r.Fields))
	for k, v := range r.Fields {
		cp.Fields[k] = v
	}
	cp.readers = make(map[string]bool, len(r.readers))
	for k := range r.readers {
		cp.readers[k] = true
	}
	return cp
}

// GrantRead adds a read-only grant; only the owner may grant.
func (t *Table) GrantRead(owner, id, user string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.records[id]
	if !ok {
		return ErrNoRecord
	}
	if r.Owner != owner {
		return ErrDenied
	}
	r.readers[user] = true
	return nil
}

// Delete removes a record; only the owner may delete.
func (t *Table) Delete(owner, id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.records[id]
	if !ok {
		return ErrNoRecord
	}
	if r.Owner != owner {
		return ErrDenied
	}
	delete(t.records, id)
	for i, oid := range t.order {
		if oid == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	return nil
}

// Filter selects records by field prefix match; an empty filter matches
// all. Only records user may read are returned, in insertion order.
func (t *Table) Filter(user string, filter map[string]string) []Record {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Record
	for _, id := range t.order {
		r := t.records[id]
		if !r.CanRead(user) {
			continue
		}
		match := true
		for k, want := range filter {
			if !strings.HasPrefix(r.Fields[k], want) {
				match = false
				break
			}
		}
		if match {
			out = append(out, r.copyOut())
		}
	}
	return out
}

// Len reports the number of records.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.records)
}
