// Package recorddb is the relational-database stand-in of §6.3: generated
// data is stored as records under the ownership of the user who caused
// them to exist, with read-only grants for other authorized users.
//
// Placement follows the paper: data produced in response to a client's
// request is written at the client's local server under that user;
// periodic application data is written at the application's host server
// under the application owner, with read-only access for every user on
// the application's ACL. Clients can never create records at a remote
// server.
package recorddb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"discover/internal/storage"
)

// Errors.
var (
	ErrNoTable  = errors.New("recorddb: no such table")
	ErrNoRecord = errors.New("recorddb: no such record")
	ErrDenied   = errors.New("recorddb: access denied")
)

// Record is one stored row.
type Record struct {
	ID      string
	Owner   string
	Created time.Time
	Fields  map[string]string
	readers map[string]bool
}

// CanRead reports whether user may read the record.
func (r *Record) CanRead(user string) bool {
	return user == r.Owner || r.readers[user]
}

// Readers lists users with read-only grants, sorted.
func (r *Record) Readers() []string {
	out := make([]string, 0, len(r.readers))
	for u := range r.readers {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Table is one named collection of records.
type Table struct {
	name    string
	journal storage.Recorder // nil = durability off

	mu      sync.RWMutex
	records map[string]*Record
	order   []string
	nextID  uint64
}

// DB is a server's record store.
type DB struct {
	mu      sync.Mutex
	tables  map[string]*Table
	journal storage.Recorder
}

// New returns an empty store.
func New() *DB { return &DB{tables: make(map[string]*Table)} }

// SetJournal event-sources the store through a WAL recorder: record
// creation, read grants, and deletion are journaled so ownership state
// (§6.3) survives a domain restart. Call before the store sees traffic.
func (db *DB) SetJournal(r storage.Recorder) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.journal = r
	for _, t := range db.tables {
		t.mu.Lock()
		t.journal = r
		t.mu.Unlock()
	}
}

// Table returns a table, creating it on first use.
func (db *DB) Table(name string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		t = &Table{name: name, journal: db.journal, records: make(map[string]*Record)}
		db.tables[name] = t
	}
	return t
}

// Lookup returns an existing table.
func (db *DB) Lookup(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, ErrNoTable
	}
	return t, nil
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert creates a record owned by owner with read-only grants for
// readers, returning its id.
func (t *Table) Insert(owner string, fields map[string]string, readers []string) string {
	t.mu.Lock()
	t.nextID++
	id := fmt.Sprintf("%s-%d", t.name, t.nextID)
	cp := make(map[string]string, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	rs := make(map[string]bool, len(readers))
	for _, u := range readers {
		if u != "" {
			rs[u] = true
		}
	}
	created := time.Now()
	t.records[id] = &Record{ID: id, Owner: owner, Created: created, Fields: cp, readers: rs}
	t.order = append(t.order, id)
	journal := t.journal
	t.mu.Unlock()
	if journal != nil {
		rl := make([]string, 0, len(rs))
		for u := range rs {
			rl = append(rl, u)
		}
		sort.Strings(rl)
		journal.Record(storage.KindRecordInsert, storage.RecordInsertEvent{
			Table: t.name, ID: id, Owner: owner, At: created, Fields: cp, Readers: rl,
		})
	}
	return id
}

// ApplyInsert re-applies a journaled insert during WAL replay: the
// record lands under its original id without re-journaling, and the id
// counter is bumped past it so post-recovery inserts cannot collide.
// An id that already exists (snapshot coverage) is left unchanged.
func (t *Table) ApplyInsert(id, owner string, created time.Time, fields map[string]string, readers []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i := strings.LastIndex(id, "-"); i >= 0 {
		if n, err := strconv.ParseUint(id[i+1:], 10, 64); err == nil && n > t.nextID {
			t.nextID = n
		}
	}
	if _, exists := t.records[id]; exists {
		return
	}
	cp := make(map[string]string, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	rs := make(map[string]bool, len(readers))
	for _, u := range readers {
		if u != "" {
			rs[u] = true
		}
	}
	t.records[id] = &Record{ID: id, Owner: owner, Created: created, Fields: cp, readers: rs}
	t.order = append(t.order, id)
}

// ApplyGrant re-applies a journaled read grant (WAL replay; no
// ownership check — the original Insert/GrantRead already enforced it).
func (t *Table) ApplyGrant(id, user string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.records[id]; ok {
		r.readers[user] = true
	}
}

// ApplyDelete re-applies a journaled deletion (WAL replay).
func (t *Table) ApplyDelete(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.records[id]; !ok {
		return
	}
	delete(t.records, id)
	for i, oid := range t.order {
		if oid == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// Get returns a record if user may read it. The returned record's Fields
// are a copy.
func (t *Table) Get(user, id string) (Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.records[id]
	if !ok {
		return Record{}, ErrNoRecord
	}
	if !r.CanRead(user) {
		return Record{}, ErrDenied
	}
	return r.copyOut(), nil
}

func (r *Record) copyOut() Record {
	cp := *r
	cp.Fields = make(map[string]string, len(r.Fields))
	for k, v := range r.Fields {
		cp.Fields[k] = v
	}
	cp.readers = make(map[string]bool, len(r.readers))
	for k := range r.readers {
		cp.readers[k] = true
	}
	return cp
}

// GrantRead adds a read-only grant; only the owner may grant.
func (t *Table) GrantRead(owner, id, user string) error {
	t.mu.Lock()
	r, ok := t.records[id]
	if !ok {
		t.mu.Unlock()
		return ErrNoRecord
	}
	if r.Owner != owner {
		t.mu.Unlock()
		return ErrDenied
	}
	r.readers[user] = true
	journal := t.journal
	t.mu.Unlock()
	if journal != nil {
		journal.Record(storage.KindRecordGrant,
			storage.RecordGrantEvent{Table: t.name, ID: id, User: user})
	}
	return nil
}

// Delete removes a record; only the owner may delete.
func (t *Table) Delete(owner, id string) error {
	t.mu.Lock()
	r, ok := t.records[id]
	if !ok {
		t.mu.Unlock()
		return ErrNoRecord
	}
	if r.Owner != owner {
		t.mu.Unlock()
		return ErrDenied
	}
	delete(t.records, id)
	for i, oid := range t.order {
		if oid == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	journal := t.journal
	t.mu.Unlock()
	if journal != nil {
		journal.Record(storage.KindRecordDelete,
			storage.RecordDeleteEvent{Table: t.name, ID: id})
	}
	return nil
}

// Filter selects records by field prefix match; an empty filter matches
// all. Only records user may read are returned, in insertion order.
func (t *Table) Filter(user string, filter map[string]string) []Record {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Record
	for _, id := range t.order {
		r := t.records[id]
		if !r.CanRead(user) {
			continue
		}
		match := true
		for k, want := range filter {
			if !strings.HasPrefix(r.Fields[k], want) {
				match = false
				break
			}
		}
		if match {
			out = append(out, r.copyOut())
		}
	}
	return out
}

// Len reports the number of records.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.records)
}

// TableDump is the persisted form of one table (domain snapshots).
type TableDump struct {
	Name    string
	NextID  uint64
	Records []RecordDump
}

// RecordDump is the persisted form of one record, with the unexported
// reader set flattened to a sorted slice.
type RecordDump struct {
	ID      string
	Owner   string
	Created time.Time
	Fields  map[string]string
	Readers []string
}

// Dump captures every table for a domain snapshot, sorted by name.
func (db *DB) Dump() []TableDump {
	db.mu.Lock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.Unlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].name < tables[j].name })
	out := make([]TableDump, 0, len(tables))
	for _, t := range tables {
		t.mu.RLock()
		td := TableDump{Name: t.name, NextID: t.nextID, Records: make([]RecordDump, 0, len(t.order))}
		for _, id := range t.order {
			r := t.records[id]
			td.Records = append(td.Records, RecordDump{
				ID: r.ID, Owner: r.Owner, Created: r.Created,
				Fields: r.Fields, Readers: r.Readers(),
			})
		}
		t.mu.RUnlock()
		out = append(out, td)
	}
	return out
}

// Restore rebuilds tables from a snapshot dump without journaling.
// Existing records with the same id are left unchanged (idempotent with
// WAL replay), and each table's id counter never moves backwards.
func (db *DB) Restore(dump []TableDump) {
	for _, td := range dump {
		t := db.Table(td.Name)
		for _, rd := range td.Records {
			t.ApplyInsert(rd.ID, rd.Owner, rd.Created, rd.Fields, rd.Readers)
		}
		t.mu.Lock()
		if td.NextID > t.nextID {
			t.nextID = td.NextID
		}
		t.mu.Unlock()
	}
}
