package recorddb

import (
	"fmt"
	"math/rand"
	"testing"
)

// The security invariant of §6.3: a user can read exactly the records
// they own or were granted. This model-based test drives the table with a
// random operation sequence and checks every visibility observation
// against a brute-force model.
func TestAccessControlMatchesModel(t *testing.T) {
	users := []string{"alice", "bob", "carol", "dave"}
	r := rand.New(rand.NewSource(99))

	for trial := 0; trial < 60; trial++ {
		db := New()
		tb := db.Table("t")
		model := map[string]*modelRec{} // id -> record

		for step := 0; step < 120; step++ {
			switch r.Intn(5) {
			case 0: // insert
				owner := users[r.Intn(len(users))]
				var readers []string
				for _, u := range users {
					if r.Intn(3) == 0 {
						readers = append(readers, u)
					}
				}
				id := tb.Insert(owner, map[string]string{"n": fmt.Sprint(step)}, readers)
				mr := &modelRec{owner: owner, readers: map[string]bool{}}
				for _, u := range readers {
					mr.readers[u] = true
				}
				model[id] = mr

			case 1: // grant by random user (may not be owner)
				id, ok := randomID(r, model)
				if !ok {
					continue
				}
				grantor := users[r.Intn(len(users))]
				grantee := users[r.Intn(len(users))]
				err := tb.GrantRead(grantor, id, grantee)
				mr := model[id]
				if mr.deleted {
					if err != ErrNoRecord {
						t.Fatalf("grant on deleted: %v", err)
					}
					continue
				}
				if grantor == mr.owner {
					if err != nil {
						t.Fatalf("owner grant failed: %v", err)
					}
					mr.readers[grantee] = true
				} else if err != ErrDenied {
					t.Fatalf("non-owner grant: err = %v", err)
				}

			case 2: // delete by random user
				id, ok := randomID(r, model)
				if !ok {
					continue
				}
				deleter := users[r.Intn(len(users))]
				err := tb.Delete(deleter, id)
				mr := model[id]
				if mr.deleted {
					if err != ErrNoRecord {
						t.Fatalf("double delete: %v", err)
					}
					continue
				}
				if deleter == mr.owner {
					if err != nil {
						t.Fatalf("owner delete failed: %v", err)
					}
					mr.deleted = true
				} else if err != ErrDenied {
					t.Fatalf("non-owner delete: err = %v", err)
				}

			case 3: // point read
				id, ok := randomID(r, model)
				if !ok {
					continue
				}
				reader := users[r.Intn(len(users))]
				_, err := tb.Get(reader, id)
				mr := model[id]
				switch {
				case mr.deleted:
					if err != ErrNoRecord {
						t.Fatalf("read deleted: %v", err)
					}
				case reader == mr.owner || mr.readers[reader]:
					if err != nil {
						t.Fatalf("authorized read denied: %v", err)
					}
				default:
					if err != ErrDenied {
						t.Fatalf("unauthorized read: err = %v", err)
					}
				}

			case 4: // full visibility scan
				reader := users[r.Intn(len(users))]
				visible := map[string]bool{}
				for _, rec := range tb.Filter(reader, nil) {
					visible[rec.ID] = true
				}
				for id, mr := range model {
					want := !mr.deleted && (reader == mr.owner || mr.readers[reader])
					if visible[id] != want {
						t.Fatalf("trial %d: %s visibility of %s = %v, want %v",
							trial, reader, id, visible[id], want)
					}
				}
			}
		}
	}
}

type modelRec struct {
	owner   string
	readers map[string]bool
	deleted bool
}

func randomID(r *rand.Rand, model map[string]*modelRec) (string, bool) {
	if len(model) == 0 {
		return "", false
	}
	i := r.Intn(len(model))
	for id := range model {
		if i == 0 {
			return id, true
		}
		i--
	}
	return "", false
}
