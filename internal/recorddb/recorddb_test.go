package recorddb

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

func TestTablesCreateAndList(t *testing.T) {
	db := New()
	ta := db.Table("runs")
	if db.Table("runs") != ta {
		t.Error("Table not idempotent")
	}
	db.Table("sessions")
	if got := db.Tables(); !reflect.DeepEqual(got, []string{"runs", "sessions"}) {
		t.Errorf("Tables = %v", got)
	}
	if _, err := db.Lookup("nosuch"); err != ErrNoTable {
		t.Errorf("Lookup missing: %v", err)
	}
	if got, err := db.Lookup("runs"); err != nil || got != ta {
		t.Errorf("Lookup = %v, %v", got, err)
	}
}

func TestInsertGetOwnership(t *testing.T) {
	db := New()
	tb := db.Table("runs")
	id := tb.Insert("alice", map[string]string{"app": "wave", "result": "42"}, []string{"bob", ""})
	if id == "" {
		t.Fatal("empty id")
	}

	r, err := tb.Get("alice", id)
	if err != nil || r.Fields["result"] != "42" {
		t.Fatalf("owner Get = %v, %v", r, err)
	}
	if r.Owner != "alice" {
		t.Errorf("owner = %q", r.Owner)
	}
	if _, err := tb.Get("bob", id); err != nil {
		t.Errorf("reader Get: %v", err)
	}
	if _, err := tb.Get("mallory", id); err != ErrDenied {
		t.Errorf("stranger Get: %v", err)
	}
	if _, err := tb.Get("alice", "runs-999"); err != ErrNoRecord {
		t.Errorf("missing record: %v", err)
	}
	if got := r.Readers(); !reflect.DeepEqual(got, []string{"bob"}) {
		t.Errorf("Readers = %v (empty user must be skipped)", got)
	}
}

func TestReturnedRecordIsIsolated(t *testing.T) {
	db := New()
	tb := db.Table("t")
	id := tb.Insert("alice", map[string]string{"k": "v"}, nil)
	r, _ := tb.Get("alice", id)
	r.Fields["k"] = "tampered"
	again, _ := tb.Get("alice", id)
	if again.Fields["k"] != "v" {
		t.Error("caller mutation reached storage")
	}
}

func TestGrantRead(t *testing.T) {
	db := New()
	tb := db.Table("t")
	id := tb.Insert("alice", nil, nil)
	if err := tb.GrantRead("bob", id, "carol"); err != ErrDenied {
		t.Errorf("non-owner grant: %v", err)
	}
	if err := tb.GrantRead("alice", id, "carol"); err != nil {
		t.Fatalf("owner grant: %v", err)
	}
	if _, err := tb.Get("carol", id); err != nil {
		t.Errorf("granted reader denied: %v", err)
	}
	if err := tb.GrantRead("alice", "t-99", "x"); err != ErrNoRecord {
		t.Errorf("grant on missing: %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := New()
	tb := db.Table("t")
	id := tb.Insert("alice", nil, []string{"bob"})
	if err := tb.Delete("bob", id); err != ErrDenied {
		t.Errorf("reader delete: %v", err)
	}
	if err := tb.Delete("alice", id); err != nil {
		t.Fatalf("owner delete: %v", err)
	}
	if err := tb.Delete("alice", id); err != ErrNoRecord {
		t.Errorf("double delete: %v", err)
	}
	if tb.Len() != 0 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestFilterVisibilityAndPrefix(t *testing.T) {
	db := New()
	tb := db.Table("t")
	tb.Insert("alice", map[string]string{"app": "wave-1", "kind": "periodic"}, []string{"bob"})
	tb.Insert("alice", map[string]string{"app": "wave-2", "kind": "response"}, nil)
	tb.Insert("carol", map[string]string{"app": "wave-3", "kind": "periodic"}, nil)

	// bob sees only the record he was granted.
	got := tb.Filter("bob", nil)
	if len(got) != 1 || got[0].Fields["app"] != "wave-1" {
		t.Errorf("bob sees %v", got)
	}
	// alice sees her two, in insertion order.
	got = tb.Filter("alice", nil)
	if len(got) != 2 || got[0].Fields["app"] != "wave-1" || got[1].Fields["app"] != "wave-2" {
		t.Errorf("alice sees %v", got)
	}
	// prefix filter
	got = tb.Filter("alice", map[string]string{"kind": "per"})
	if len(got) != 1 || got[0].Fields["kind"] != "periodic" {
		t.Errorf("prefix filter = %v", got)
	}
	// non-matching filter
	if got := tb.Filter("alice", map[string]string{"kind": "zzz"}); len(got) != 0 {
		t.Errorf("bad filter = %v", got)
	}
	// filter on missing field never matches non-empty prefix
	if got := tb.Filter("alice", map[string]string{"nosuch": "x"}); len(got) != 0 {
		t.Errorf("missing-field filter = %v", got)
	}
}

// Invariant: a user can never read a record they neither own nor were
// granted; concurrent inserts never produce duplicate ids.
func TestConcurrentInsertsUniqueIDs(t *testing.T) {
	db := New()
	tb := db.Table("t")
	var wg sync.WaitGroup
	ids := make(chan string, 400)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ids <- tb.Insert("alice", nil, nil)
			}
		}(w)
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
	if tb.Len() != 400 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestErrorsAreSentinel(t *testing.T) {
	db := New()
	tb := db.Table("t")
	_, err := tb.Get("u", "missing")
	if !errors.Is(err, ErrNoRecord) {
		t.Errorf("err = %v", err)
	}
}
