package discover

// One testing.B benchmark per experiment in EXPERIMENTS.md. These measure
// the steady-state cost of each code path with Go's benchmark machinery;
// cmd/benchharness runs the full scenario versions (with simulated WAN
// latency) and prints paper-vs-measured rows.

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"discover/internal/app"
	"discover/internal/appproto"
	"discover/internal/collab"
	"discover/internal/core"
	"discover/internal/experiments"
	"discover/internal/lockmgr"
	"discover/internal/netsim"
	"discover/internal/orb"
	"discover/internal/portal"
	"discover/internal/server"
	"discover/internal/session"
	"discover/internal/wire"
)

func quietLog(string, ...any) {}

func benchServer(b *testing.B) *server.Server {
	b.Helper()
	srv, err := server.New(server.Config{Name: "bench", Logf: quietLog})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.ListenDaemon("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	srv.Auth().SetUserSecret("alice", "pw")
	return srv
}

func benchApp(b *testing.B, srv *server.Server, name string, opts ...appproto.DialOption) *appproto.Session {
	b.Helper()
	rt, err := app.NewRuntime(app.Config{
		Name: name, Kernel: app.NewSeismic1D(64), ComputeSteps: 1,
		Users: []app.UserGrant{{User: "alice", Privilege: "steer"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	before := len(srv.LocalAppIDs())
	s, err := appproto.Dial(context.Background(), srv.Daemon().Addr(), rt, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.LocalAppIDs()) <= before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	return s
}

// BenchmarkE1AppsPerServer drives one full phase (compute + interaction +
// update) on each of 40 simultaneous applications per iteration — the
// §6.1 "more than 40 simultaneous applications" configuration.
func BenchmarkE1AppsPerServer(b *testing.B) {
	srv := benchServer(b)
	const nApps = 40
	apps := make([]*appproto.Session, nApps)
	for i := range apps {
		apps[i] = benchApp(b, srv, fmt.Sprintf("app-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range apps {
			if _, err := a.RunPhase(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(nApps), "apps")
}

// BenchmarkE2ClientsPerServer measures one client command/response round
// trip through the HTTP portal path with 20 simultaneous clients
// attached — the §6.1 client-capacity configuration.
func BenchmarkE2ClientsPerServer(b *testing.B) {
	srv := benchServer(b)
	as := benchApp(b, srv, "shared")
	ts := httptest.NewServer(srv.HTTPHandler())
	b.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); as.Run(ctx) }()
	b.Cleanup(func() { cancel(); <-done })

	const nClients = 20
	clients := make([]*portal.Client, nClients)
	for i := range clients {
		cl := portal.New(ts.URL)
		if err := cl.Login(ctx, "alice", "pw"); err != nil {
			b.Fatal(err)
		}
		if _, err := cl.ConnectApp(ctx, as.AppID()); err != nil {
			b.Fatal(err)
		}
		cl.StartPump(nil)
		b.Cleanup(cl.StopPump)
		clients[i] = cl
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := clients[i%nClients]
		wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := cl.Do(wctx, "status", nil); err != nil {
			cancel()
			b.Fatal(err)
		}
		cancel()
	}
}

// BenchmarkE3ProtocolTradeoff compares the two halves of §6.1's
// observation: the app-side custom TCP protocol vs the client-side HTTP
// servlet path, on one served status query each.
func BenchmarkE3ProtocolTradeoff(b *testing.B) {
	b.Run("tcp-app-path", func(b *testing.B) {
		srv := benchServer(b)
		as := benchApp(b, srv, "tcp")
		sess, err := srv.Login(context.Background(), "alice", "pw")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.ConnectApp(context.Background(), sess, as.AppID()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.SubmitCommand(context.Background(), sess, "status", nil); err != nil {
				b.Fatal(err)
			}
			if _, err := as.RunPhase(); err != nil {
				b.Fatal(err)
			}
			sess.Buffer.Drain(0)
		}
	})
	b.Run("http-client-path", func(b *testing.B) {
		srv := benchServer(b)
		as := benchApp(b, srv, "http")
		ts := httptest.NewServer(srv.HTTPHandler())
		b.Cleanup(ts.Close)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); as.Run(ctx) }()
		b.Cleanup(func() { cancel(); <-done })
		cl := portal.New(ts.URL)
		if err := cl.Login(ctx, "alice", "pw"); err != nil {
			b.Fatal(err)
		}
		if _, err := cl.ConnectApp(ctx, as.AppID()); err != nil {
			b.Fatal(err)
		}
		cl.StartPump(nil)
		b.Cleanup(cl.StopPump)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if _, err := cl.Do(wctx, "status", nil); err != nil {
				cancel()
				b.Fatal(err)
			}
			cancel()
		}
	})
}

// twoDomains builds a two-domain federation with no WAN latency (the
// benches measure protocol cost; the harness adds latency).
func twoDomains(b *testing.B, mode core.UpdateMode) *experiments.Federation {
	b.Helper()
	fed, err := experiments.NewFederation(experiments.FederationConfig{
		Mode:         mode,
		PollInterval: 5 * time.Millisecond,
		Domains: []struct {
			Name string
			Site netsim.Site
		}{experiments.DomainAt("host", "east"), experiments.DomainAt("edge", "west")},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(fed.Close)
	return fed
}

// BenchmarkE4CollabTraffic measures one cross-server update broadcast:
// host-side fan-out to local members plus one relay push per peer server
// (§5.2.3).
func BenchmarkE4CollabTraffic(b *testing.B) {
	fed := twoDomains(b, core.Push)
	host, edge := fed.Domains[0], fed.Domains[1]
	as, err := experiments.AttachApp(host, "collab", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { as.Close() })
	if err := edge.Sub.DiscoverPeers(); err != nil {
		b.Fatal(err)
	}
	sess, err := experiments.LoginLocal(edge, "alice")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := edge.Srv.ConnectApp(context.Background(), sess, as.AppID()); err != nil {
		b.Fatal(err)
	}
	fed.Net.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := as.RunPhase(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	wan := fed.Net.TotalWAN()
	b.ReportMetric(float64(wan.Bytes)/float64(b.N), "wanB/op")
	sess.Buffer.Drain(0)
}

// BenchmarkE5RemoteVsLocal measures a get_param command/response cycle
// for a local client and for a client at a peer server (§7).
func BenchmarkE5RemoteVsLocal(b *testing.B) {
	run := func(b *testing.B, remote bool) {
		fed := twoDomains(b, core.Push)
		host, edge := fed.Domains[0], fed.Domains[1]
		as, err := experiments.AttachApp(host, "lat", 1, appproto.WithUpdateEvery(1000000))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { as.Close() })
		if err := edge.Sub.DiscoverPeers(); err != nil {
			b.Fatal(err)
		}
		d := host
		if remote {
			d = edge
		}
		sess, err := experiments.LoginLocal(d, "alice")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Srv.ConnectApp(context.Background(), sess, as.AppID()); err != nil {
			b.Fatal(err)
		}
		params := []wire.Param{{Key: "name", Value: "source_freq"}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cmd, err := d.Srv.SubmitCommand(context.Background(), sess, "get_param", params)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := as.RunPhase(); err != nil {
				b.Fatal(err)
			}
			got := false
			for !got {
				for _, m := range sess.Buffer.DrainWait(0, 100*time.Millisecond) {
					if m.Seq == cmd.Seq {
						got = true
					}
				}
			}
		}
	}
	b.Run("local", func(b *testing.B) { run(b, false) })
	b.Run("remote", func(b *testing.B) { run(b, true) })
}

// BenchmarkE6DiscoveryAuth measures warm trader discovery and remote
// level-two authorization (§7).
func BenchmarkE6DiscoveryAuth(b *testing.B) {
	fed := twoDomains(b, core.Push)
	host, edge := fed.Domains[0], fed.Domains[1]
	as, err := experiments.AttachApp(host, "auth", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { as.Close() })
	if err := edge.Sub.DiscoverPeers(); err != nil {
		b.Fatal(err)
	}
	edge.Srv.Auth().SetUserSecret("alice", "pw")
	b.Run("trader-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := edge.Sub.DiscoverPeers(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remote-privilege", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := edge.Sub.RemotePrivilege(context.Background(), "alice", as.AppID()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remote-app-list", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if apps := edge.Sub.RemoteApps(context.Background(), "alice"); len(apps) == 0 {
				b.Fatal("no remote apps")
			}
		}
	})
}

// BenchmarkE7SessionScalability measures host-side delivery work for one
// update: 24 local members (centralized) vs 8 local members + 2 relays
// (the load the spread configuration leaves at the host, §5.2.3).
func BenchmarkE7SessionScalability(b *testing.B) {
	sink := func(*wire.Message) {}
	bench := func(b *testing.B, locals, relays int) {
		hub := collab.NewHub()
		g := hub.Group("app")
		for i := 0; i < locals; i++ {
			g.Join(fmt.Sprintf("c%d", i), sink)
		}
		for i := 0; i < relays; i++ {
			g.JoinRelay(fmt.Sprintf("peer%d", i), sink)
		}
		u := wire.NewUpdate("app", 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.BroadcastUpdate(u, "")
		}
	}
	b.Run("centralized-24-members", func(b *testing.B) { bench(b, 24, 0) })
	b.Run("spread-8-members-2-relays", func(b *testing.B) { bench(b, 8, 2) })
}

// BenchmarkE8SlowClientBuffers measures the FIFO primitives behind the
// poll-and-pull model (§6.2).
func BenchmarkE8SlowClientBuffers(b *testing.B) {
	m := wire.NewUpdate("app", 1)
	b.Run("push-drain", func(b *testing.B) {
		f := session.NewFifo(256)
		for i := 0; i < b.N; i++ {
			f.Push(m)
			if i%64 == 0 {
				f.Drain(0)
			}
		}
	})
	b.Run("push-overflowing", func(b *testing.B) {
		f := session.NewFifo(64)
		for i := 0; i < b.N; i++ {
			f.Push(m) // beyond capacity: constant-time drop-oldest
		}
	})
}

// BenchmarkE9DistributedLocking measures local acquire/release against a
// relayed acquire/release through the substrate (§5.2.4).
func BenchmarkE9DistributedLocking(b *testing.B) {
	b.Run("local", func(b *testing.B) {
		m := lockmgr.NewManager()
		for i := 0; i < b.N; i++ {
			if ok, _ := m.TryAcquire("app", "alice", 0); !ok {
				b.Fatal("denied")
			}
			if err := m.Release("app", "alice"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("relayed", func(b *testing.B) {
		fed := twoDomains(b, core.Push)
		host, edge := fed.Domains[0], fed.Domains[1]
		as, err := experiments.AttachApp(host, "lock", 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { as.Close() })
		if err := edge.Sub.DiscoverPeers(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			granted, _, err := edge.Sub.RemoteLock(context.Background(), as.AppID(), "edge/client-1", true)
			if err != nil || !granted {
				b.Fatalf("lock: %v %v", granted, err)
			}
			if _, _, err := edge.Sub.RemoteLock(context.Background(), as.AppID(), "edge/client-1", false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkA1OrbVsSocket measures one echoed message through the mini-ORB
// against the raw framed-TCP protocol (§6.2).
func BenchmarkA1OrbVsSocket(b *testing.B) {
	msg := wire.NewCommand("app#1", "c1", "get_param", wire.Param{Key: "name", Value: "x"})
	b.Run("orb", func(b *testing.B) {
		o := orb.New()
		if err := o.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { o.Close() })
		type echo struct{ M *wire.Message }
		o.Register("echo", orb.MethodMap{
			"echo": orb.Handler(func(a echo) (echo, error) { return a, nil }),
		})
		client := orb.New()
		b.Cleanup(func() { client.Close() })
		ctx := context.Background()
		ref := o.Ref("echo")
		var out echo
		if err := client.Invoke(ctx, ref, "echo", echo{M: msg}, &out); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := client.Invoke(ctx, ref, "echo", echo{M: msg}, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("socket", func(b *testing.B) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { ln.Close() })
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wc := wire.NewConn(conn, wire.BinaryCodec{})
			for {
				m, err := wc.Recv()
				if err != nil {
					return
				}
				if err := wc.Send(m); err != nil {
					return
				}
			}
		}()
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		wc := wire.NewConn(raw, wire.BinaryCodec{})
		b.Cleanup(func() { wc.Close() })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := wc.Send(msg); err != nil {
				b.Fatal(err)
			}
			if _, err := wc.Recv(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkA2CodecAblation measures encode+decode of a typical update
// with both codecs.
func BenchmarkA2CodecAblation(b *testing.B) {
	msg := wire.NewUpdate("rutgers#12", 42,
		wire.Param{Key: "m.step", Value: "1200"},
		wire.Param{Key: "m.energy", Value: "3.14159"},
		wire.Param{Key: "p.source_freq", Value: "0.05"},
	)
	for _, codec := range []wire.Codec{wire.BinaryCodec{}, wire.NewGobCodec()} {
		b.Run(codec.Name(), func(b *testing.B) {
			enc, err := codec.Encode(nil, msg)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, err := codec.Encode(nil, msg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := codec.Decode(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkViewCommand measures a field-view snapshot: build, downsample
// and encode the oil-reservoir pressure grid.
func BenchmarkViewCommand(b *testing.B) {
	rt, err := app.NewRuntime(app.Config{
		Name: "res", Kernel: app.NewOilReservoir(48), ComputeSteps: 50,
		Users: []app.UserGrant{{User: "a", Privilege: "steer"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	rt.ComputePhase()
	cmd := wire.NewCommand("a", "c", "view", wire.Param{Key: "name", Value: "pressure"})
	cmd.SetInt("max_points", 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := rt.HandleCommand(cmd)
		if resp.Kind != wire.KindResponse {
			b.Fatal(resp.Text)
		}
	}
}

// BenchmarkOnewayVsTwoWay measures the ORB's oneway (control-channel
// push) against a regular round-trip invocation.
func BenchmarkOnewayVsTwoWay(b *testing.B) {
	server := orb.New()
	if err := server.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { server.Close() })
	type note struct{ N int }
	server.Register("sink", orb.MethodMap{
		"note": orb.Handler(func(r note) (struct{}, error) { return struct{}{}, nil }),
	})
	client := orb.New()
	b.Cleanup(func() { client.Close() })
	ctx := context.Background()
	ref := server.Ref("sink")
	b.Run("oneway", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := client.InvokeOneway(ctx, ref, "note", note{N: i}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("twoway", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := client.Invoke(ctx, ref, "note", note{N: i}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRelayBatching measures a 64-update burst relayed host -> edge
// with relay batching disabled (batch-1: one deliver invocation per
// message, the seed behaviour) and enabled (batch-32: deliverBatch
// coalescing). Run with -benchmem: the orbInv/msg metric comes from the
// substrate's invocation counters, not timing, so the N -> ceil(N/K)
// claim is visible directly.
func BenchmarkRelayBatching(b *testing.B) {
	run := func(b *testing.B, relayBatch int) {
		fed, err := experiments.NewFederation(experiments.FederationConfig{
			Mode:         core.Push,
			PollInterval: 5 * time.Millisecond,
			RelayBatch:   relayBatch,
			Domains: []struct {
				Name string
				Site netsim.Site
			}{experiments.DomainAt("host", "east"), experiments.DomainAt("edge", "west")},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(fed.Close)
		host, edge := fed.Domains[0], fed.Domains[1]
		as, err := experiments.AttachApp(host, "burst", 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { as.Close() })
		if err := edge.Sub.DiscoverPeers(); err != nil {
			b.Fatal(err)
		}
		sess, err := experiments.LoginLocal(edge, "alice")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := edge.Srv.ConnectApp(context.Background(), sess, as.AppID()); err != nil {
			b.Fatal(err)
		}
		appID := as.AppID()
		g := host.Srv.Hub().Group(appID)

		const burst = 64
		var seq uint64
		wait := func(target uint64) {
			for {
				for _, m := range sess.Buffer.DrainWait(0, 100*time.Millisecond) {
					if m.Kind == wire.KindUpdate && m.Seq >= target {
						return
					}
				}
			}
		}
		// Warm the relay path (and the deliverBatch capability probe).
		seq++
		g.BroadcastUpdate(wire.NewUpdate(appID, seq), "")
		wait(seq)

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < burst; j++ {
				seq++
				g.BroadcastUpdate(wire.NewUpdate(appID, seq), "")
			}
			wait(seq)
		}
		b.StopTimer()
		var inv, delivered, dropped uint64
		for _, r := range host.Sub.RelayStats() {
			inv += r.Invocations
			delivered += r.Delivered
			dropped += r.Dropped
		}
		if dropped != 0 {
			b.Fatalf("relay dropped %d messages mid-benchmark", dropped)
		}
		if delivered > 0 {
			b.ReportMetric(float64(inv)/float64(delivered), "orbInv/msg")
		}
	}
	b.Run("batch-1", func(b *testing.B) { run(b, 1) })
	b.Run("batch-32", func(b *testing.B) { run(b, core.DefaultRelayBatch) })
}

// BenchmarkRemoteAppsFanout measures one federation-wide application
// listing across 8 peers, each 20ms RTT away, with the directory cache
// disabled so every round pays the wire: one peer at a time (the seed
// behaviour) vs the scatter-gather pool. Sequential costs ~Σ(RTT), the
// fan-out ~max(RTT); the parent benchmark fails outright if the fan-out
// is not at least 2x faster.
func BenchmarkRemoteAppsFanout(b *testing.B) {
	const nPeers = 8
	rtt := 20 * time.Millisecond
	domains := []struct {
		Name string
		Site netsim.Site
	}{experiments.DomainAt("portal", "home")}
	sites := make([]netsim.Site, nPeers)
	for i := range sites {
		sites[i] = netsim.Site(fmt.Sprintf("s%d", i+1))
		domains = append(domains, experiments.DomainAt(fmt.Sprintf("d%d", i+1), sites[i]))
	}
	fed, err := experiments.NewFederation(experiments.FederationConfig{
		Mode:    core.Push,
		Domains: domains,
		Topology: func(t *netsim.Topology) {
			for i, si := range sites {
				t.SetRTT("home", si, rtt)
				for _, sj := range sites[i+1:] {
					t.SetRTT(si, sj, rtt)
				}
			}
		},
		HeartbeatEvery: time.Hour, // no background traffic mid-measurement
		OfferTTL:       time.Hour,
		DiscoverEvery:  time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(fed.Close)
	portal := fed.Domains[0]
	for i, d := range fed.Domains[1:] {
		as, err := experiments.AttachApp(d, fmt.Sprintf("fan-%d", i+1), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { as.Close() })
	}
	portal.Sub.SetDirCacheTTL(-1) // every listing pays the wire

	measure := func(b *testing.B, workers int) time.Duration {
		portal.Sub.SetFanoutWorkers(workers)
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if apps := portal.Sub.RemoteApps(context.Background(), "alice"); len(apps) != nPeers {
				b.Fatalf("listing saw %d apps, want %d", len(apps), nPeers)
			}
		}
		return time.Since(start) / time.Duration(b.N)
	}
	var seq, par time.Duration
	b.Run("sequential", func(b *testing.B) { seq = measure(b, 1) })
	b.Run("parallel", func(b *testing.B) { par = measure(b, 0) }) // 0 = default pool
	if seq > 0 && par > 0 {
		if seq < 2*par {
			b.Fatalf("fan-out not >=2x faster: sequential %v/op vs parallel %v/op", seq, par)
		}
		b.Logf("sequential %v/op vs parallel %v/op (%.1fx)", seq, par, float64(seq)/float64(par))
	}
}

// BenchmarkA3PollVsPush measures end-to-end propagation of one update
// between two servers in each mode (§5.2.3 design choice).
func BenchmarkA3PollVsPush(b *testing.B) {
	run := func(b *testing.B, mode core.UpdateMode) {
		fed := twoDomains(b, mode)
		host, edge := fed.Domains[0], fed.Domains[1]
		as, err := experiments.AttachApp(host, "prop", 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { as.Close() })
		if err := edge.Sub.DiscoverPeers(); err != nil {
			b.Fatal(err)
		}
		sess, err := experiments.LoginLocal(edge, "alice")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := edge.Srv.ConnectApp(context.Background(), sess, as.AppID()); err != nil {
			b.Fatal(err)
		}
		var expect uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			expect++
			if _, err := as.RunPhase(); err != nil {
				b.Fatal(err)
			}
			got := false
			for !got {
				for _, m := range sess.Buffer.DrainWait(0, 100*time.Millisecond) {
					if m.Kind == wire.KindUpdate && m.Seq >= expect {
						got = true
					}
				}
			}
		}
	}
	b.Run("push", func(b *testing.B) { run(b, core.Push) })
	b.Run("poll-5ms", func(b *testing.B) { run(b, core.Poll) })
}
