// Command benchharness regenerates every experiment in EXPERIMENTS.md:
// the paper's §6.1 measurements, the §7 announced evaluations, and the
// §6.2 design ablations. It prints paper-claim vs measured rows and exits
// non-zero if any claim's shape fails to hold.
//
// Usage:
//
//	benchharness            # run everything at full size
//	benchharness -quick     # reduced parameters (CI-sized)
//	benchharness -run E4,E5 # a subset
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"discover/internal/experiments"
	"discover/internal/telemetry"
)

type experiment struct {
	id  string
	run func(quick bool) (experiments.Result, error)
}

var all = []experiment{
	{"E1", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunE1([]int{10, 41}, 200*time.Millisecond)
		}
		return experiments.RunE1([]int{10, 20, 41, 80}, time.Second)
	}},
	{"E2", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunE2([]int{5, 20}, 300*time.Millisecond)
		}
		return experiments.RunE2([]int{5, 10, 20, 40}, time.Second)
	}},
	{"E3", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunE3(500)
		}
		return experiments.RunE3(3000)
	}},
	{"E4", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunE4([]int{4}, 10, 40*time.Millisecond)
		}
		return experiments.RunE4([]int{2, 4, 8}, 20, 40*time.Millisecond)
	}},
	{"E5", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunE5(10, 40*time.Millisecond)
		}
		return experiments.RunE5(30, 40*time.Millisecond)
	}},
	{"E6", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunE6(100)
		}
		return experiments.RunE6(1000)
	}},
	{"E7", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunE7(9, 8)
		}
		return experiments.RunE7(24, 15)
	}},
	{"E8", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunE8(800, 32)
		}
		return experiments.RunE8(5000, 64)
	}},
	{"E9", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunE9(10, 40*time.Millisecond)
		}
		return experiments.RunE9(30, 40*time.Millisecond)
	}},
	{"A1", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunA1(1000)
		}
		return experiments.RunA1(20000)
	}},
	{"A2", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunA2(5000)
		}
		return experiments.RunA2(100000)
	}},
	{"A3", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunA3(5, 80*time.Millisecond, 20*time.Millisecond)
		}
		return experiments.RunA3(15, 100*time.Millisecond, 20*time.Millisecond)
	}},
	{"R1", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunR1(5 * time.Millisecond)
		}
		return experiments.RunR1(20 * time.Millisecond)
	}},
	{"R2", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunR2("", 24)
		}
		return experiments.RunR2("", 120)
	}},
	{"P1", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunP1([]int{2, 8}, 20*time.Millisecond)
		}
		return experiments.RunP1([]int{2, 4, 8}, 20*time.Millisecond)
	}},
	{"O1", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunO1(20 * time.Millisecond)
		}
		return experiments.RunO1(40 * time.Millisecond)
	}},
	{"S1", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunS1([]int{8, 64}, 100*time.Millisecond)
		}
		return experiments.RunS1([]int{16, 256}, 300*time.Millisecond)
	}},
	{"S2", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunS2(5000, 100*time.Millisecond, 1500*time.Millisecond)
		}
		return experiments.RunS2(100000, time.Second, 15*time.Second)
	}},
	{"W1", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunW1(500, 1<<20)
		}
		return experiments.RunW1(3000, 2<<20)
	}},
	{"G1", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunG1([]int{16, 48})
		}
		return experiments.RunG1([]int{50, 200})
	}},
	{"C1", func(q bool) (experiments.Result, error) {
		if q {
			return experiments.RunC1(200)
		}
		return experiments.RunC1(1000)
	}},
}

// benchReport is the shape of the -json output file: every experiment's
// rows plus a snapshot of all latency histograms, counters (including
// the edge's shed and FIFO-overflow totals), and gauges the run
// populated (the same data GET /metrics exports, in JSON).
type benchReport struct {
	Generated  string                        `json:"generated"`
	Quick      bool                          `json:"quick"`
	Results    []experiments.Result          `json:"results"`
	Histograms []telemetry.HistogramSnapshot `json:"histograms"`
	Counters   []telemetry.CounterSnapshot   `json:"counters"`
	Gauges     []telemetry.GaugeSnapshot     `json:"gauges"`
}

func main() {
	quick := flag.Bool("quick", false, "reduced parameters")
	runList := flag.String("run", "", "comma-separated experiment ids (default: all)")
	jsonOut := flag.String("json", "", "write results and histogram summaries to this file (e.g. BENCH_run.json)")
	flag.Parse()

	selected := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			selected[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	failures := 0
	var results []experiments.Result
	for _, e := range all {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		start := time.Now()
		res, err := e.run(*quick)
		if err != nil {
			fmt.Printf("== %s FAILED TO RUN: %v\n\n", e.id, err)
			failures++
			continue
		}
		results = append(results, res)
		fmt.Printf("== %s: %s  (%s)\n", res.ID, res.Title, time.Since(start).Round(time.Millisecond))
		for _, row := range res.Rows {
			status := "PASS"
			if !row.Pass {
				status = "FAIL"
				failures++
			}
			fmt.Printf("   [%s] %s\n", status, row.Name)
			fmt.Printf("         paper   : %s\n", row.Paper)
			fmt.Printf("         measured: %s\n", row.Measured)
		}
		fmt.Println()
	}
	if *jsonOut != "" {
		report := benchReport{
			Generated:  time.Now().UTC().Format(time.RFC3339),
			Quick:      *quick,
			Results:    results,
			Histograms: telemetry.DefaultRegistry().Snapshots(),
			Counters:   telemetry.DefaultRegistry().CounterSnapshots(),
			Gauges:     telemetry.DefaultRegistry().GaugeSnapshots(),
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Printf("benchharness: writing %s: %v\n", *jsonOut, err)
			failures++
		} else {
			fmt.Printf("benchharness: wrote %s (%d histograms)\n", *jsonOut, len(report.Histograms))
		}
		// R2's compact durability record rides along whenever R2 ran.
		if snap, ok := experiments.R2LastSnapshot(); ok {
			data, err := json.MarshalIndent(snap, "", "  ")
			if err == nil {
				err = os.WriteFile("BENCH_R2.json", append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Printf("benchharness: writing BENCH_R2.json: %v\n", err)
				failures++
			} else {
				fmt.Println("benchharness: wrote BENCH_R2.json")
			}
		}
		// S2's compact scaling record rides along whenever S2 ran.
		if snap, ok := experiments.S2LastSnapshot(); ok {
			data, err := json.MarshalIndent(snap, "", "  ")
			if err == nil {
				err = os.WriteFile("BENCH_S2.json", append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Printf("benchharness: writing BENCH_S2.json: %v\n", err)
				failures++
			} else {
				fmt.Println("benchharness: wrote BENCH_S2.json")
			}
		}
		// W1's compact wire-protocol record rides along whenever W1 ran.
		if snap, ok := experiments.W1LastSnapshot(); ok {
			data, err := json.MarshalIndent(snap, "", "  ")
			if err == nil {
				err = os.WriteFile("BENCH_W1.json", append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Printf("benchharness: writing BENCH_W1.json: %v\n", err)
				failures++
			} else {
				fmt.Println("benchharness: wrote BENCH_W1.json")
			}
		}
		// G1's compact epidemic-directory record rides along whenever G1 ran.
		if snap, ok := experiments.G1LastSnapshot(); ok {
			data, err := json.MarshalIndent(snap, "", "  ")
			if err == nil {
				err = os.WriteFile("BENCH_G1.json", append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Printf("benchharness: writing BENCH_G1.json: %v\n", err)
				failures++
			} else {
				fmt.Println("benchharness: wrote BENCH_G1.json")
			}
		}
		// C1's compact replicated-collaboration record rides along
		// whenever C1 ran.
		if snap, ok := experiments.C1LastSnapshot(); ok {
			data, err := json.MarshalIndent(snap, "", "  ")
			if err == nil {
				err = os.WriteFile("BENCH_C1.json", append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Printf("benchharness: writing BENCH_C1.json: %v\n", err)
				failures++
			} else {
				fmt.Println("benchharness: wrote BENCH_C1.json")
			}
		}
	}
	if failures > 0 {
		fmt.Printf("benchharness: %d failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchharness: all experiment shapes hold")
}
