// Command traderd runs the federation's shared Trader and Naming
// services: the discovery backbone DISCOVER servers use to find each
// other (the paper's minimal CORBA trader layered on the naming service).
//
// Usage:
//
//	traderd -addr 127.0.0.1:7100
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"discover"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var users multiFlag
	addr := flag.String("addr", "127.0.0.1:7100", "listen address for the trader/naming endpoint")
	flag.Var(&users, "user", "register user:secret in the centralized user directory (repeatable)")
	flag.Parse()

	t, err := discover.StartTrader(*addr)
	if err != nil {
		log.Fatalf("traderd: %v", err)
	}
	defer t.Close()
	fmt.Printf("traderd: trader and naming services at %s\n", t.Addr())
	if len(users) > 0 {
		dir := t.UserDirectory()
		for _, u := range users {
			user, secret, ok := strings.Cut(u, ":")
			if !ok {
				log.Fatalf("traderd: -user %q must be user:secret", u)
			}
			dir.Register(user, secret, nil)
		}
		fmt.Printf("traderd: user directory enabled with %d user(s)\n", len(users))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("traderd: shutting down")
}
