// Command appsim runs one synthetic steerable application (oil reservoir,
// CFD cavity, seismic wave, or binary inspiral) and connects it to a
// DISCOVER server's application daemon.
//
// Usage:
//
//	appsim -server 127.0.0.1:7000 -kernel oil-reservoir -name reservoir-3 \
//	       -grant alice:steer -grant bob:monitor
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"discover"
	"discover/internal/app"
	"discover/internal/appproto"
	"discover/internal/wire"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var grants multiFlag
	serverAddr := flag.String("server", "127.0.0.1:7000", "DISCOVER daemon address")
	name := flag.String("name", "sim1", "application name")
	kind := flag.String("kernel", "oil-reservoir", "kernel kind: "+strings.Join(app.KernelKinds(), ", "))
	owner := flag.String("owner", "", "owning user-id for generated records")
	steps := flag.Int("steps", 10, "kernel steps per compute phase")
	phaseDelay := flag.Duration("phase-delay", 10*time.Millisecond, "wall-clock pause per compute phase")
	updateEvery := flag.Int("update-every", 1, "emit an update every N phases")
	checkpointEvery := flag.Int("checkpoint-every", 0, "run an auto-checkpoint interaction agent every N phases (0 disables)")
	checkpointDir := flag.String("checkpoint-dir", ".", "directory for auto-checkpoints")
	flag.Var(&grants, "grant", "ACL entry as user:privilege (repeatable)")
	flag.Parse()

	kernel, err := discover.NewKernel(*kind)
	if err != nil {
		log.Fatalf("appsim: %v", err)
	}
	cfg := app.Config{Name: *name, Kernel: kernel, ComputeSteps: *steps, Owner: *owner}
	for _, g := range grants {
		user, priv, ok := strings.Cut(g, ":")
		if !ok {
			log.Fatalf("appsim: -grant %q must be user:privilege", g)
		}
		cfg.Users = append(cfg.Users, app.UserGrant{User: user, Privilege: priv})
	}
	if len(cfg.Users) == 0 {
		log.Fatal("appsim: at least one -grant is required (the server rejects ACL-less registrations)")
	}
	rt, err := app.NewRuntime(cfg)
	if err != nil {
		log.Fatalf("appsim: %v", err)
	}
	if *checkpointEvery > 0 {
		// An interaction agent (§4.2's "automated periodic interactions"):
		// snapshot the application at phase boundaries without any client.
		rt.AddAgent(app.Agent{
			Name:        "auto-checkpoint",
			EveryPhases: *checkpointEvery,
			Action: func(r *app.Runtime) {
				resp := r.HandleCommand(wire.NewCommand("", "agent", "checkpoint"))
				if resp.Kind != wire.KindResponse {
					log.Printf("appsim: auto-checkpoint failed: %s", resp.Text)
					return
				}
				path := filepath.Join(*checkpointDir,
					fmt.Sprintf("%s-phase%d.ckpt", *name, r.Phases()))
				if err := os.WriteFile(path, resp.Data, 0o644); err != nil {
					log.Printf("appsim: writing checkpoint: %v", err)
					return
				}
				log.Printf("appsim: checkpoint written to %s (%d bytes)", path, len(resp.Data))
			},
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	sess, err := appproto.Dial(ctx, *serverAddr, rt,
		appproto.WithUpdateEvery(*updateEvery),
		appproto.WithPhaseDelay(*phaseDelay))
	if err != nil {
		log.Fatalf("appsim: connecting to %s: %v", *serverAddr, err)
	}
	defer sess.Close()
	fmt.Printf("appsim: %s (%s) registered as %s\n", *name, *kind, sess.AppID())

	if err := sess.Run(ctx); err != nil && err != context.Canceled {
		log.Fatalf("appsim: %v", err)
	}
	fmt.Println("appsim: shutting down")
}
