// Command discoverd runs one DISCOVER interaction/collaboration server:
// web portal API, application daemon, and (when a trader is given) the
// peer-to-peer middleware substrate.
//
// Usage:
//
//	discoverd -name rutgers -http 127.0.0.1:8080 -daemon 127.0.0.1:7000 \
//	          -trader 127.0.0.1:7100 -user alice:wonderland -user bob:pw
//
// Without -trader the server runs standalone (the centralized baseline).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"discover"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var users multiFlag
	name := flag.String("name", "discover1", "unique server name (no '/' or '#')")
	httpAddr := flag.String("http", "127.0.0.1:8080", "web portal listen address")
	daemonAddr := flag.String("daemon", "127.0.0.1:7000", "application daemon listen address")
	orbAddr := flag.String("orb", "127.0.0.1:0", "middleware ORB listen address")
	traderAddr := flag.String("trader", "", "trader endpoint to join (empty = standalone)")
	mode := flag.String("mode", "push", "update propagation between servers: push or poll")
	pollEvery := flag.Duration("poll-interval", 100*time.Millisecond, "poll mode interval")
	site := flag.String("site", "", "site property advertised in the trader offer")
	userDir := flag.String("userdir", "", "centralized user directory address (often the trader address)")
	tlsSelf := flag.Bool("tls-self-signed", false, "serve the portal over HTTPS with an ephemeral certificate")
	tlsCert := flag.String("tls-cert", "", "PEM certificate for the HTTPS portal")
	tlsKey := flag.String("tls-key", "", "PEM key for the HTTPS portal")
	traceSample := flag.Int("trace-sample", 0, "sample 1-in-N portal requests for tracing (0 = off)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on the portal")
	gossipOn := flag.Bool("gossip", false, "replicate the federation directory epidemically (membership + anti-entropy); listings stop fanning out to peers")
	gossipPeriod := flag.Duration("gossip-period", 0, "gossip round period (0 = 1s; needs -gossip)")
	gossipFanout := flag.Int("gossip-fanout", 0, "peers contacted per gossip round (0 = 3; needs -gossip)")
	dataDir := flag.String("data-dir", "", "persist domain state (WAL + snapshots) under this directory; empty = in-memory")
	snapEvery := flag.Duration("snapshot-every", 0, "durable domain snapshot/compaction cadence (0 = 1m)")
	walSync := flag.Duration("wal-sync-every", 0, "WAL group-fsync interval (0 = 100ms)")
	flag.Var(&users, "user", "home user as user:secret (repeatable)")
	flag.Parse()

	cfg := discover.DomainConfig{
		Name:          *name,
		HTTPAddr:      *httpAddr,
		DaemonAddr:    *daemonAddr,
		ORBAddr:       *orbAddr,
		TraderAddr:    *traderAddr,
		PollInterval:  *pollEvery,
		Users:         map[string]string{},
		RecordUpdates: true,

		GossipEnabled: *gossipOn,
		GossipPeriod:  *gossipPeriod,
		GossipFanout:  *gossipFanout,

		TraceSampleEvery: *traceSample,
		EnablePprof:      *pprofOn,
		DataDir:          *dataDir,
		SnapshotEvery:    *snapEvery,
		WalSyncEvery:     *walSync,
	}
	switch *mode {
	case "push":
		cfg.Mode = discover.Push
	case "poll":
		cfg.Mode = discover.Poll
	default:
		log.Fatalf("discoverd: unknown -mode %q", *mode)
	}
	if *site != "" {
		cfg.Props = map[string]string{"site": *site}
	}
	cfg.UserDirAddr = *userDir
	switch {
	case *tlsSelf:
		cfg.TLS = &discover.TLSConfig{SelfSigned: true}
	case *tlsCert != "" || *tlsKey != "":
		cfg.TLS = &discover.TLSConfig{CertFile: *tlsCert, KeyFile: *tlsKey}
	}
	for _, u := range users {
		user, secret, ok := strings.Cut(u, ":")
		if !ok {
			log.Fatalf("discoverd: -user %q must be user:secret", u)
		}
		cfg.Users[user] = secret
	}

	d, err := discover.StartDomain(cfg)
	if err != nil {
		log.Fatalf("discoverd: %v", err)
	}
	defer d.Close()

	fmt.Printf("discoverd: server %q\n", *name)
	fmt.Printf("  portal : %s\n", d.BaseURL())
	fmt.Printf("  daemon : %s\n", d.DaemonAddr())
	if d.Substrate != nil {
		fmt.Printf("  peers  : %v (via trader %s)\n", d.Substrate.Peers(), *traderAddr)
	} else {
		fmt.Println("  mode   : standalone (no federation)")
	}

	// SIGTERM must take the graceful path too: on a durable domain the
	// deferred Close drains, snapshots, and writes the clean-shutdown
	// marker so the next start skips WAL replay.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("discoverd: shutting down")
}
