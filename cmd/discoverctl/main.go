// Command discoverctl is a command-line web-portal client: the terminal
// counterpart of the browser portals in the paper.
//
// Usage:
//
//	discoverctl -url http://127.0.0.1:8080 -user alice -secret pw <command>
//
// Commands:
//
//	apps                          list visible applications (local+remote)
//	users                         list users logged in at the server
//	status    -app <id>           query application status
//	params    -app <id>           list application parameters
//	get       -app <id> -param p  read one parameter
//	steer     -app <id> -param p -value v   acquire lock, set, release
//	view      -app <id> [-field f]          render a field as ASCII art
//	watch     -app <id> [-for 10s]          stream updates/chat/events
//	chat      -app <id> -text "..."         send a chat line
//	replay    -app <id>           dump the interaction log
//	records   -table <name>       list visible records
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"discover"
	"discover/internal/app"
	"discover/internal/wire"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "portal base URL")
	user := flag.String("user", "", "user-id")
	secret := flag.String("secret", "", "login secret")
	appID := flag.String("app", "", "application id")
	param := flag.String("param", "", "parameter name")
	value := flag.String("value", "", "parameter value")
	text := flag.String("text", "", "chat text")
	field := flag.String("field", "", "field name for the view command")
	width := flag.Int("width", 72, "terminal width for rendered views")
	table := flag.String("table", "responses", "record table")
	forDur := flag.Duration("for", 30*time.Second, "watch duration")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("discoverctl: exactly one command expected; see -h")
	}
	cmd := flag.Arg(0)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	c := discover.NewClient(*url)
	if err := c.Login(ctx, *user, *secret); err != nil {
		log.Fatalf("discoverctl: login: %v", err)
	}
	defer c.Logout(context.Background())

	connect := func() {
		if *appID == "" {
			log.Fatalf("discoverctl: %s requires -app", cmd)
		}
		priv, err := c.ConnectApp(ctx, *appID)
		if err != nil {
			log.Fatalf("discoverctl: connect %s: %v", *appID, err)
		}
		fmt.Printf("connected to %s with privilege %s\n", *appID, priv)
	}

	doCmd := func(op string, params map[string]string) *wire.Message {
		c.StartPump(nil)
		wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		resp, err := c.Do(wctx, op, params)
		if err != nil {
			log.Fatalf("discoverctl: %s: %v", op, err)
		}
		if resp.Kind == wire.KindError {
			log.Fatalf("discoverctl: %s failed: %s (%s)", op, resp.Text, wire.StatusText(resp.Status))
		}
		return resp
	}

	switch cmd {
	case "apps":
		apps, err := c.Apps(ctx)
		if err != nil {
			log.Fatalf("discoverctl: %v", err)
		}
		fmt.Printf("%-24s %-16s %-14s %-10s %s\n", "ID", "NAME", "KIND", "SERVER", "PRIVILEGE")
		for _, a := range apps {
			fmt.Printf("%-24s %-16s %-14s %-10s %s\n", a.ID, a.Name, a.Kind, a.Server, a.Privilege)
		}

	case "users":
		users, err := c.Users(ctx)
		if err != nil {
			log.Fatalf("discoverctl: %v", err)
		}
		fmt.Println(strings.Join(users, "\n"))

	case "status":
		connect()
		resp := doCmd("status", nil)
		fmt.Println(resp.Text)
		for _, p := range resp.Params {
			fmt.Printf("  %s = %s\n", p.Key, p.Value)
		}

	case "params":
		connect()
		resp := doCmd("list_params", nil)
		for _, p := range resp.Params {
			fmt.Printf("%s: %s\n", strings.TrimPrefix(p.Key, "param."), p.Value)
		}

	case "get":
		connect()
		resp := doCmd("get_param", map[string]string{"name": *param})
		v, _ := resp.Get("value")
		fmt.Printf("%s = %s\n", *param, v)

	case "steer":
		connect()
		granted, holder, err := c.AcquireLock(ctx)
		if err != nil {
			log.Fatalf("discoverctl: lock: %v", err)
		}
		if !granted {
			log.Fatalf("discoverctl: steering lock held by %s", holder)
		}
		defer c.ReleaseLock(context.Background())
		resp := doCmd("set_param", map[string]string{"name": *param, "value": *value})
		fmt.Println(resp.Text)

	case "view":
		connect()
		if *field == "" {
			resp := doCmd("view", nil)
			fmt.Println("available fields:")
			for _, p := range resp.Params {
				fmt.Printf("  %s\n", strings.TrimPrefix(p.Key, "field."))
			}
			return
		}
		resp := doCmd("view", map[string]string{
			"name":       *field,
			"max_points": fmt.Sprint(*width * *width),
		})
		v, err := app.DecodeFieldView(resp.Data)
		if err != nil {
			log.Fatalf("discoverctl: decoding view: %v", err)
		}
		fmt.Print(v.RenderASCII(*width))

	case "watch":
		connect()
		c.StartPump(func(m *wire.Message) {
			switch m.Kind {
			case wire.KindUpdate:
				fmt.Printf("[update %d]", m.Seq)
				for _, p := range m.Params {
					fmt.Printf(" %s=%s", p.Key, p.Value)
				}
				fmt.Println()
			case wire.KindChat:
				u, _ := m.Get("user")
				fmt.Printf("[chat] %s: %s\n", u, m.Text)
			case wire.KindEvent:
				fmt.Printf("[event] %s from %s: %s\n", m.Op, m.Client, m.Text)
			case wire.KindResponse, wire.KindError:
				fmt.Printf("[%s] %s: %s\n", m.Kind, m.Op, m.Text)
			}
		})
		select {
		case <-ctx.Done():
		case <-time.After(*forDur):
		}
		c.StopPump()

	case "chat":
		connect()
		if err := c.Chat(ctx, *text); err != nil {
			log.Fatalf("discoverctl: chat: %v", err)
		}

	case "replay":
		connect()
		rr, err := c.Replay(ctx, 0)
		if err != nil {
			log.Fatalf("discoverctl: replay: %v", err)
		}
		for _, e := range rr.Entries {
			fmt.Printf("%6d %s %-10s %s %s\n", e.Seq, e.Time.Format(time.RFC3339), e.Client, e.Msg.Kind, e.Msg.Op)
		}

	case "records":
		recs, err := c.Records(ctx, *table, nil)
		if err != nil {
			log.Fatalf("discoverctl: records: %v", err)
		}
		for _, r := range recs {
			fmt.Printf("%s owner=%s fields=%v\n", r.ID, r.Owner, r.Fields)
		}

	default:
		log.Fatalf("discoverctl: unknown command %q", cmd)
	}
}
