package discover

import (
	"context"
	"testing"
	"time"

	"discover/internal/wire"
)

// TestFacadeEndToEnd runs the whole public API surface: a trader, two
// federated domains, one application each, and a client steering a remote
// application from its local portal.
func TestFacadeEndToEnd(t *testing.T) {
	trader, err := StartTrader("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer trader.Close()

	mk := func(name string) *Domain {
		d, err := StartDomain(DomainConfig{
			Name:       name,
			HTTPAddr:   "127.0.0.1:0",
			TraderAddr: trader.Addr(),
			Users:      map[string]string{"alice": "pw"},
			Logf:       func(string, ...any) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		return d
	}
	east := mk("east")
	west := mk("west")
	east.Substrate.DiscoverPeers()
	west.Substrate.DiscoverPeers()

	// An oil-reservoir app joins the east domain.
	kernel, err := NewKernel("oil-reservoir")
	if err != nil {
		t.Fatal(err)
	}
	appl, err := NewApplication(context.Background(), east.DaemonAddr(), AppConfig{
		Name:   "reservoir",
		Kernel: kernel,
		Users:  []UserGrant{{User: "alice", Privilege: "steer"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer appl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go appl.Run(ctx)

	// Give registration a moment, then re-discover.
	deadline := time.Now().Add(2 * time.Second)
	for len(east.Server.LocalAppIDs()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// Client logs in at WEST and steers the EAST application.
	c := NewClient(west.BaseURL())
	cctx, ccancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer ccancel()
	if err := c.Login(cctx, "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	apps, err := c.Apps(cctx)
	if err != nil {
		t.Fatal(err)
	}
	var target AppInfo
	for _, a := range apps {
		if a.Server == "east" {
			target = a
		}
	}
	if target.ID == "" {
		t.Fatalf("east app not visible from west: %v", apps)
	}
	if priv, err := c.ConnectApp(cctx, target.ID); err != nil || priv != "steer" {
		t.Fatalf("ConnectApp = %q, %v", priv, err)
	}
	c.StartPump(nil)
	defer c.StopPump()
	if granted, _, err := c.AcquireLock(cctx); err != nil || !granted {
		t.Fatalf("AcquireLock = %v, %v", granted, err)
	}
	resp, err := c.Do(cctx, "set_param", map[string]string{"name": "injection_rate", "value": "2.5"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindResponse {
		t.Fatalf("steering failed: %s", resp.Text)
	}
	if v := appl.Session.Runtime().Params().MustGet("injection_rate"); v != 2.5 {
		t.Errorf("injection_rate = %v", v)
	}
}

// TestUserDirectoryFallback exercises §6.3's centralized directory: a
// user registered only in the GIS-style directory can log into any domain
// of the federation.
func TestUserDirectoryFallback(t *testing.T) {
	trader, err := StartTrader("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer trader.Close()
	trader.UserDirectory().Register("globaluser", "gpw", map[string]string{"org": "ggf"})

	d, err := StartDomain(DomainConfig{
		Name:        "east",
		HTTPAddr:    "127.0.0.1:0",
		TraderAddr:  trader.Addr(),
		UserDirAddr: trader.Addr(),
		Logf:        func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ctx := context.Background()
	c := NewClient(d.BaseURL())
	if err := c.Login(ctx, "globaluser", "gpw"); err != nil {
		t.Fatalf("directory-backed login failed: %v", err)
	}
	if err := c.Login(ctx, "globaluser", "wrong"); err == nil {
		t.Error("directory-backed login with wrong secret succeeded")
	}
	if err := c.Login(ctx, "nobody", "x"); err == nil {
		t.Error("unknown user login succeeded")
	}

	// A standalone domain (no federation) can also use the directory.
	solo, err := StartDomain(DomainConfig{
		Name:        "solo2",
		HTTPAddr:    "127.0.0.1:0",
		UserDirAddr: trader.Addr(),
		Logf:        func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	c2 := NewClient(solo.BaseURL())
	if err := c2.Login(ctx, "globaluser", "gpw"); err != nil {
		t.Errorf("standalone directory login failed: %v", err)
	}
}

// TestTLSPortal exercises the paper's SSL-based secure server: the portal
// served over HTTPS with a self-signed certificate, the full steering
// flow running through it.
func TestTLSPortal(t *testing.T) {
	d, err := StartDomain(DomainConfig{
		Name:     "secure",
		HTTPAddr: "127.0.0.1:0",
		TLS:      &TLSConfig{SelfSigned: true},
		Users:    map[string]string{"alice": "pw"},
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.BaseURL()[:8] != "https://" {
		t.Fatalf("BaseURL = %q, want https", d.BaseURL())
	}

	kernel, _ := NewKernel("seismic-1d")
	appl, err := NewApplication(context.Background(), d.DaemonAddr(), AppConfig{
		Name: "wave", Kernel: kernel,
		Users: []UserGrant{{User: "alice", Privilege: "steer"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer appl.Close()
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go appl.Run(runCtx)

	ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()

	// A client without the cert pool must be rejected by TLS.
	bad := NewClient(d.BaseURL())
	if err := bad.Login(ctx, "alice", "pw"); err == nil {
		t.Error("client without trust anchors connected to the TLS portal")
	}

	c := NewClient(d.BaseURL(), WithHTTPClient(TLSClient(d.CertPool())))
	if err := c.Login(ctx, "alice", "pw"); err != nil {
		t.Fatalf("TLS login: %v", err)
	}
	apps, err := c.Apps(ctx)
	if err != nil || len(apps) != 1 {
		t.Fatalf("Apps over TLS = %v, %v", apps, err)
	}
	if _, err := c.ConnectApp(ctx, apps[0].ID); err != nil {
		t.Fatal(err)
	}
	c.StartPump(nil)
	defer c.StopPump()
	if granted, _, err := c.AcquireLock(ctx); err != nil || !granted {
		t.Fatalf("lock over TLS: %v %v", granted, err)
	}
	resp, err := c.Do(ctx, "set_param", map[string]string{"name": "source_freq", "value": "0.2"})
	if err != nil || resp.Kind != wire.KindResponse {
		t.Fatalf("steer over TLS: %v %v", resp, err)
	}
}

func TestStandaloneDomainIsCentralizedBaseline(t *testing.T) {
	d, err := StartDomain(DomainConfig{
		Name:     "solo",
		HTTPAddr: "127.0.0.1:0",
		Users:    map[string]string{"alice": "pw"},
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Substrate != nil {
		t.Error("standalone domain has a substrate")
	}
	c := NewClient(d.BaseURL())
	ctx := context.Background()
	if err := c.Login(ctx, "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	apps, err := c.Apps(ctx)
	if err != nil || len(apps) != 0 {
		t.Errorf("Apps = %v, %v", apps, err)
	}
}
