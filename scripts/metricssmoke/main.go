// Command metricssmoke is the CI smoke test for the observability
// endpoints: it starts one in-process domain with tracing enabled,
// drives a sampled command through the portal API, and scrapes
// GET /metrics and GET /api/trace/{id} the way an operator would.
//
// It exits non-zero when the scrape is not well-formed Prometheus text,
// when the expected middleware histograms are missing, or when the
// sampled command's trace cannot be fetched back.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"discover"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metricssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("metricssmoke: ok")
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	domain, err := discover.StartDomain(discover.DomainConfig{
		Name:             "smoke",
		HTTPAddr:         "127.0.0.1:0",
		Users:            map[string]string{"alice": "pw"},
		TraceSampleEvery: 1,
		Logf:             func(string, ...any) {},
	})
	if err != nil {
		return err
	}
	defer domain.Close()

	kernel, err := discover.NewKernel("seismic-1d")
	if err != nil {
		return err
	}
	app, err := discover.NewApplication(ctx, domain.DaemonAddr(), discover.AppConfig{
		Name:   "smoke-app",
		Kernel: kernel,
		Users:  []discover.UserGrant{{User: "alice", Privilege: "steer"}},
	})
	if err != nil {
		return err
	}
	go app.Run(ctx)

	base := domain.BaseURL()

	// Drive one sampled command end to end.
	var login struct{ ClientID string }
	if err := post(base+"/api/login", map[string]string{"user": "alice", "secret": "pw"}, &login); err != nil {
		return fmt.Errorf("login: %w", err)
	}
	if err := post(base+"/api/connect", map[string]string{"clientId": login.ClientID, "app": app.ID()}, nil); err != nil {
		return fmt.Errorf("connect: %w", err)
	}
	var cmd struct{ TraceID string }
	if err := post(base+"/api/command", map[string]any{"clientId": login.ClientID, "op": "status"}, &cmd); err != nil {
		return fmt.Errorf("command: %w", err)
	}
	if cmd.TraceID == "" {
		return fmt.Errorf("sampled command returned no traceId")
	}

	// The trace must be fetchable by id.
	var trace struct {
		ID    string
		Spans []struct{ Hop string }
	}
	if err := get(base+"/api/trace/"+cmd.TraceID, &trace); err != nil {
		return fmt.Errorf("trace fetch: %w", err)
	}
	if trace.ID != cmd.TraceID || len(trace.Spans) == 0 {
		return fmt.Errorf("trace %s came back empty", cmd.TraceID)
	}

	// The scrape must be Prometheus text carrying the middleware series.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("GET /metrics -> %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return fmt.Errorf("GET /metrics content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	out := string(body)
	// The lock and FIFO histograms register at server construction, so
	// they are present even on a standalone (peer-less) domain.
	for _, want := range []string{
		"# TYPE discover_lock_acquire_seconds histogram",
		"# TYPE discover_fifo_wait_seconds histogram",
		"discover_fifo_wait_seconds_count",
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			return fmt.Errorf("scrape lacks %q", want)
		}
	}
	return nil
}

func post(url string, body any, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s -> %d: %s", url, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("%s -> %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
