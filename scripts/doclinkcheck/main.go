// Command doclinkcheck verifies every intra-repository markdown link.
//
// It walks the repo for *.md files (skipping .git), extracts inline
// [text](target) links, and fails when a relative target does not exist
// on disk. External links (http/https/mailto) and pure in-page anchors
// (#section) are skipped; a relative target's #fragment is stripped
// before the existence check.
//
// Usage: go run ./scripts/doclinkcheck [repo-root]   (default ".")
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links. Images ![alt](src) are matched
// too (the leading ! is simply not captured) — their sources must exist
// just the same.
var linkRe = regexp.MustCompile(`\[[^\]\n]*\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}

	var broken []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if skippable(target) {
				continue
			}
			// Strip a #fragment; a bare-fragment link was already skipped.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				broken = append(broken, fmt.Sprintf("%s: broken link %q", path, m[1]))
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclinkcheck:", err)
		os.Exit(1)
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Fprintln(os.Stderr, b)
		}
		os.Exit(1)
	}
}

// skippable reports link targets outside this checker's scope: absolute
// URLs, mail links, and in-page anchors.
func skippable(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
