// Command wiredrift keeps WIRE.md honest. It extracts the wire-contract
// constants from source:
//
//   - v2 frame types and flags from internal/wire/v2.go
//     (`V2Frame... V2FrameType = 0x..`, `V2Flag... uint8 = 0x..`),
//   - v1 message types, reply statuses and system error codes from
//     internal/orb/proto.go (`msg... = N`, `reply... = N`,
//     `Code... = "..."`),
//   - v2 payload tags from internal/orb/proto2.go
//     (`targetRef/targetDef = 0x..`, `blobRaw/blobDef/blobRef = 0x..`),
//   - envelope response statuses from internal/wire/wire.go
//     (`Status... int32 = N`) and the ordered Kind iota block,
//
// then cross-checks them against WIRE.md's tables: every constant must
// appear as a `| `value` | `ConstName` |` row with the matching value,
// and every documented row must name a constant that exists in source
// with that value. Drift in either direction fails, so the normative
// spec cannot rot silently. The protocol magics ("DORB", "DWP2",
// "DTRC") must also appear in the doc.
//
// Usage: go run ./scripts/wiredrift [repo-root]   (default ".")
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	frameRe  = regexp.MustCompile(`(V2Frame\w+)\s+V2FrameType = (0x[0-9a-fA-F]{2})`)
	flagRe   = regexp.MustCompile(`(V2Flag\w+)\s+uint8\s*= (0x[0-9a-fA-F]{2})`)
	msgRe    = regexp.MustCompile(`(?m)^\t(msg[A-Z]\w*)\s*= ([0-9]+)`)
	replyRe  = regexp.MustCompile(`(?m)^\t(reply[A-Z]\w*)\s*= ([0-9]+)`)
	codeRe   = regexp.MustCompile(`(?m)^\t(Code\w+)\s*= "([^"]+)"`)
	tagRe    = regexp.MustCompile(`(?m)^\t(targetRef|targetDef|blobRaw|blobDef|blobRef)\s*= (0x[0-9a-fA-F]{2})`)
	statusRe = regexp.MustCompile(`(Status\w+)\s+int32 = ([0-9]+)`)
	kindRe   = regexp.MustCompile(`(?m)^\t(Kind\w+|kindSentinel)`)
	// Doc rows: | `value` | `ConstName` | ...
	rowRe = regexp.MustCompile("(?m)^\\| `([^`]+)` \\| `((?:V2Frame|V2Flag|msg|reply|Code|Status|Kind|targetRef|targetDef|blobRaw|blobDef|blobRef)\\w*)` \\|")
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	v2Src := mustRead(filepath.Join(root, "internal", "wire", "v2.go"))
	wireSrc := mustRead(filepath.Join(root, "internal", "wire", "wire.go"))
	protoSrc := mustRead(filepath.Join(root, "internal", "orb", "proto.go"))
	proto2Src := mustRead(filepath.Join(root, "internal", "orb", "proto2.go"))
	doc := mustRead(filepath.Join(root, "WIRE.md"))

	// name -> normalized wire value, from source.
	code := map[string]string{}
	collect := func(src string, re *regexp.Regexp) {
		for _, m := range re.FindAllStringSubmatch(src, -1) {
			code[m[1]] = normalize(m[2])
		}
	}
	collect(v2Src, frameRe)
	collect(v2Src, flagRe)
	collect(protoSrc, msgRe)
	collect(protoSrc, replyRe)
	collect(protoSrc, codeRe)
	collect(proto2Src, tagRe)
	collect(wireSrc, statusRe)

	// The Kind block assigns values by iota order; kindSentinel ends it
	// and is not part of the wire contract.
	for i, m := range kindRe.FindAllStringSubmatch(wireSrc, -1) {
		if m[1] == "kindSentinel" {
			break
		}
		code[m[1]] = strconv.Itoa(i)
	}

	docRows := map[string]string{}
	for _, m := range rowRe.FindAllStringSubmatch(doc, -1) {
		docRows[m[2]] = normalize(m[1])
	}

	if len(code) < 20 || len(docRows) == 0 {
		fmt.Fprintln(os.Stderr, "wiredrift: extraction came up empty; the source patterns drifted")
		os.Exit(1)
	}

	var drift []string
	for name, v := range code {
		dv, ok := docRows[name]
		switch {
		case !ok:
			drift = append(drift, fmt.Sprintf("constant undocumented in WIRE.md: %s = %s", name, v))
		case dv != v:
			drift = append(drift, fmt.Sprintf("value drift for %s: code says %s, WIRE.md says %s", name, v, dv))
		}
	}
	for name, v := range docRows {
		if _, ok := code[name]; !ok {
			drift = append(drift, fmt.Sprintf("documented constant missing from source: %s = %s", name, v))
		}
	}
	for _, magic := range []string{"DORB", "DWP2", "DTRC"} {
		if !strings.Contains(doc, magic) {
			drift = append(drift, fmt.Sprintf("protocol magic %q not mentioned in WIRE.md", magic))
		}
	}

	if len(drift) > 0 {
		sort.Strings(drift)
		for _, d := range drift {
			fmt.Fprintln(os.Stderr, "wiredrift: "+d)
		}
		os.Exit(1)
	}
	fmt.Printf("wiredrift: WIRE.md in sync (%d wire constants)\n", len(code))
}

// normalize maps the value notations used in code and doc onto one
// form: hex like 0x01 becomes decimal, decimals pass through, anything
// else (error-code strings) is literal.
func normalize(v string) string {
	if strings.HasPrefix(v, "0x") || strings.HasPrefix(v, "0X") {
		if n, err := strconv.ParseUint(v[2:], 16, 64); err == nil {
			return strconv.FormatUint(n, 10)
		}
	}
	return v
}

func mustRead(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wiredrift: %v\n", err)
		os.Exit(1)
	}
	return string(data)
}
