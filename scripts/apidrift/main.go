// Command apidrift keeps API.md honest. It extracts:
//
//   - the route table from internal/server/http.go (every
//     `{Method: "...", Path: "..."}` entry in Routes()),
//   - any direct mux registration in internal/server/*.go
//     (`HandleFunc("METHOD /api/v1/...")`), so a streaming or
//     special-cased endpoint wired outside the table cannot dodge the
//     check, and
//   - the error-code registry from internal/server/errors.go (every
//     `Code... ErrCode = "..."` constant),
//
// then cross-checks both against API.md: every route must have a
// `### `METHOD /api/v1/path“ heading (and vice versa — documented
// endpoints must exist in code), and every code must appear as a
// “ `code` “ row in the registry table (and vice versa). Any drift
// in either direction is a failure, so the doc cannot rot silently.
//
// Usage: go run ./scripts/apidrift [repo-root]   (default ".")
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	routeRe = regexp.MustCompile(`\{Method:\s*"(GET|POST|PUT|DELETE|PATCH)",\s*Path:\s*"([^"]+)"`)
	// Direct registrations bypassing the route table, e.g.
	// mux.HandleFunc("GET /api/v1/session/{id}/stream", ...).
	handleRe = regexp.MustCompile(`HandleFunc\("(GET|POST|PUT|DELETE|PATCH) (/api/v1[^"]*)"`)
	codeRe   = regexp.MustCompile(`Code\w+\s+ErrCode\s*=\s*"([^"]+)"`)
	// Endpoint headings in API.md: ### `POST /api/v1/login` (open)?
	headingRe = regexp.MustCompile("(?m)^### `(GET|POST|PUT|DELETE|PATCH) (/api/v1[^`]*)`")
	// Registry rows in API.md: | `code` | 429 | ... |
	rowRe = regexp.MustCompile("(?m)^\\| `([a-z_]+)` \\| [0-9]{3} \\|")
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	httpSrc := mustRead(filepath.Join(root, "internal", "server", "http.go"))
	errSrc := mustRead(filepath.Join(root, "internal", "server", "errors.go"))
	doc := mustRead(filepath.Join(root, "API.md"))

	codeRoutes := map[string]bool{}
	for _, m := range routeRe.FindAllStringSubmatch(httpSrc, -1) {
		codeRoutes[m[1]+" /api/v1"+m[2]] = true
	}
	srcs, err := filepath.Glob(filepath.Join(root, "internal", "server", "*.go"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "apidrift: %v\n", err)
		os.Exit(1)
	}
	for _, src := range srcs {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		for _, m := range handleRe.FindAllStringSubmatch(mustRead(src), -1) {
			codeRoutes[m[1]+" "+m[2]] = true
		}
	}
	docRoutes := map[string]bool{}
	for _, m := range headingRe.FindAllStringSubmatch(doc, -1) {
		docRoutes[m[1]+" "+m[2]] = true
	}
	codes := map[string]bool{}
	for _, m := range codeRe.FindAllStringSubmatch(errSrc, -1) {
		codes[m[1]] = true
	}
	docCodes := map[string]bool{}
	for _, m := range rowRe.FindAllStringSubmatch(doc, -1) {
		docCodes[m[1]] = true
	}

	if len(codeRoutes) == 0 || len(codes) == 0 {
		fmt.Fprintln(os.Stderr, "apidrift: extraction came up empty; the source patterns drifted")
		os.Exit(1)
	}

	var drift []string
	drift = append(drift, diff("route undocumented in API.md", codeRoutes, docRoutes)...)
	drift = append(drift, diff("documented route missing from http.go", docRoutes, codeRoutes)...)
	drift = append(drift, diff("error code missing from API.md registry", codes, docCodes)...)
	drift = append(drift, diff("documented code missing from errors.go", docCodes, codes)...)

	if len(drift) > 0 {
		for _, d := range drift {
			fmt.Fprintln(os.Stderr, "apidrift: "+d)
		}
		os.Exit(1)
	}
	fmt.Printf("apidrift: API.md in sync (%d routes, %d error codes)\n",
		len(codeRoutes), len(codes))
}

// diff reports members of a that are absent from b, labelled.
func diff(label string, a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, fmt.Sprintf("%s: %s", label, k))
		}
	}
	sort.Strings(out)
	return out
}

func mustRead(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apidrift: %v\n", err)
		os.Exit(1)
	}
	return string(data)
}
