#!/usr/bin/env bash
# Repo-wide check: format, vet, build, race-clean tests, bench smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# Documentation: every intra-repo markdown link must resolve.
go run ./scripts/doclinkcheck

# API contract: API.md's endpoint headings and error-code registry must
# match the route table and code registry in internal/server.
go run ./scripts/apidrift

# Observability smoke: boot a domain, drive a sampled command, fetch its
# trace back and scrape /metrics as Prometheus text.
go run ./scripts/metricssmoke

# Chaos smoke: the fault-injection paths (mid-run domain kill/restart,
# partition + heal, breaker fast-fail) rerun uncached so flakiness in the
# failure detector surfaces here, not in CI roulette. P1 rides along: a
# listing under partition must return within its context budget with
# unavailable-marked entries — never hang. S2 rides along too: the
# streaming edge's request-reduction and shed shapes involve real timing,
# so they rerun uncached with the chaos batch.
go test -race -count=1 -run 'Chaos|R1|P1|S2' ./internal/core/ ./internal/experiments/

# Bench smoke: one iteration of every benchmark, so the bench code itself
# cannot rot between full harness runs.
go test -run '^$' -bench . -benchtime 1x ./...
