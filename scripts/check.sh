#!/usr/bin/env bash
# Repo-wide check: format, vet, build, race-clean tests, bench smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# Documentation: every intra-repo markdown link must resolve.
go run ./scripts/doclinkcheck

# API contract: API.md's endpoint headings and error-code registry must
# match the route table and code registry in internal/server.
go run ./scripts/apidrift

# Wire contract: WIRE.md's frame-type, flag, status, error-code and
# message-kind tables must match the constants in internal/wire and
# internal/orb.
go run ./scripts/wiredrift

# Observability smoke: boot a domain, drive a sampled command, fetch its
# trace back and scrape /metrics as Prometheus text.
go run ./scripts/metricssmoke

# Chaos smoke: the fault-injection paths (mid-run domain kill/restart,
# partition + heal, breaker fast-fail) rerun uncached so flakiness in the
# failure detector surfaces here, not in CI roulette. P1 rides along: a
# listing under partition must return within its context budget with
# unavailable-marked entries — never hang. S2 rides along too: the
# streaming edge's request-reduction and shed shapes involve real timing,
# so they rerun uncached with the chaos batch. R2 (kill a durable domain,
# recover from WAL + snapshots) joins for the same reason: crash/restart
# timing and fsync interleavings deserve an uncached race-enabled pass.
# -p 1 keeps the packages sequential: S2's CPU-shape and R2's recovery
# budget are measured, and a concurrently running chaos package skews
# them.
go test -race -p 1 -count=1 -run 'Chaos|R1|R2|P1|S2' ./internal/core/ ./internal/experiments/

# Gossip smoke: the epidemic directory's full availability cycle —
# free-running convergence, partition-degraded listings, heal and
# recovery — plus the merge property tests and the membership churn
# test rerun uncached under the race detector (timing-sensitive like
# the chaos batch above).
go test -race -count=1 -run 'TestGossipConvergenceSmoke|TestMergeConvergesUnderAnyOrder|TestGossipChurnUnderLoad' \
    ./internal/experiments/ ./internal/gossip/

# Collaboration smoke: experiment C1 (replicated group log under churn
# and partition, latecomer replay) plus the CRDT merge property tests and
# the churn hammer rerun uncached under the race detector — the hammer
# exists precisely for -race.
go test -race -count=1 -run 'TestC1CollabChaos|TestCollabMergeConvergesUnderAnyOrder|TestChurnHammer|TestCollabAntiResurrectionGuard|TestCollabEvictionSplicesFromJournal|TestCollabSnapshotRestoreRoundtrip' \
    ./internal/experiments/ ./internal/collab/

# Durability smoke: the storage fuzz/property pair (WAL crash-point fuzz,
# archive replay determinism) and the server kill-recover path rerun
# uncached under the race detector.
go test -race -count=1 -run 'TestWALCrashPointFuzz|TestReplayDeterminismProperty|TestPersist' \
    ./internal/storage/ ./internal/archive/ ./internal/server/

# Bench smoke: one iteration of every benchmark, so the bench code itself
# cannot rot between full harness runs.
go test -run '^$' -bench . -benchtime 1x ./...
