module discover

go 1.22
