package discover_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"discover"
)

// Example brings up a complete single-domain collaboratory — server,
// steerable application and web-portal client — and steers a parameter.
func Example() {
	domain, err := discover.StartDomain(discover.DomainConfig{
		Name:     "example",
		HTTPAddr: "127.0.0.1:0",
		Users:    map[string]string{"alice": "secret"},
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer domain.Close()

	kernel, _ := discover.NewKernel("oil-reservoir")
	app, err := discover.NewApplication(context.Background(), domain.DaemonAddr(), discover.AppConfig{
		Name:   "reservoir",
		Kernel: kernel,
		Users:  []discover.UserGrant{{User: "alice", Privilege: "steer"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go app.Run(ctx)

	client := discover.NewClient(domain.BaseURL())
	if err := client.Login(ctx, "alice", "secret"); err != nil {
		log.Fatal(err)
	}
	priv, err := client.ConnectApp(ctx, app.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("privilege:", priv)

	client.StartPump(nil)
	defer client.StopPump()
	if granted, _, err := client.AcquireLock(ctx); err != nil || !granted {
		log.Fatal("no lock")
	}
	resp, err := client.Do(ctx, "set_param", map[string]string{
		"name": "injection_rate", "value": "2.0",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("steering:", resp.Text)

	// Output:
	// privilege: steer
	// steering: set injection_rate
}
