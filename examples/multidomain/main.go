// Multi-domain federation: the paper's headline scenario. Three
// collaboratory domains (modelled on the Rutgers / UT Austin / Caltech
// deployments) discover each other through the trader and form a
// peer-to-peer network of servers.
//
// A scientist logs into her *closest* server (caltech) and gains global
// access: she lists applications across all three domains, steers a
// seismic simulation hosted at rutgers through the substrate, holds the
// distributed steering lock at the host server, and chats with a
// colleague connected at utexas — the chat crossing the WAN once per
// server, not once per client.
//
//	go run ./examples/multidomain
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"discover"
	"discover/internal/wire"
)

func main() {
	trader, err := discover.StartTrader("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer trader.Close()
	fmt.Printf("trader (discovery service) at %s\n", trader.Addr())

	users := map[string]string{"vijay": "pw", "manish": "pw"}
	mkDomain := func(name, site string) *discover.Domain {
		d, err := discover.StartDomain(discover.DomainConfig{
			Name:       name,
			HTTPAddr:   "127.0.0.1:0",
			TraderAddr: trader.Addr(),
			Users:      users,
			Props:      map[string]string{"site": site},
			Logf:       func(string, ...any) {},
		})
		if err != nil {
			log.Fatal(err)
		}
		return d
	}
	rutgers := mkDomain("rutgers", "piscataway")
	utexas := mkDomain("utexas", "austin")
	caltech := mkDomain("caltech", "pasadena")
	domains := []*discover.Domain{rutgers, utexas, caltech}
	defer func() {
		for _, d := range domains {
			d.Close()
		}
	}()

	// One application per domain.
	grants := []discover.UserGrant{
		{User: "vijay", Privilege: "steer"},
		{User: "manish", Privilege: "steer"},
	}
	runCtx, stopApps := context.WithCancel(context.Background())
	defer stopApps()
	startApp := func(d *discover.Domain, name, kind string) *discover.Application {
		kernel, err := discover.NewKernel(kind)
		if err != nil {
			log.Fatal(err)
		}
		a, err := discover.NewApplication(context.Background(), d.DaemonAddr(), discover.AppConfig{
			Name: name, Kernel: kernel, Users: grants,
		})
		if err != nil {
			log.Fatal(err)
		}
		go a.Run(runCtx)
		fmt.Printf("application %-12s (%s) registered at %s\n", name, kind, d.Server.Name())
		return a
	}
	seismicApp := startApp(rutgers, "seismic-ft", "seismic-1d")
	defer seismicApp.Close()
	cfdApp := startApp(utexas, "cavity-re100", "cfd-cavity")
	defer cfdApp.Close()
	nrApp := startApp(caltech, "bns-inspiral", "relativity")
	defer nrApp.Close()

	// Force a discovery round so every server knows its peers now.
	for _, d := range domains {
		if err := d.Substrate.DiscoverPeers(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s discovered peers: %v\n", d.Server.Name(), d.Substrate.Peers())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// vijay logs in at caltech — his closest server — and sees everything.
	vijay := discover.NewClient(caltech.BaseURL())
	if err := vijay.Login(ctx, "vijay", "pw"); err != nil {
		log.Fatal(err)
	}
	apps, err := vijay.Apps(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vijay (at caltech) sees %d applications across the grid:\n", len(apps))
	var target discover.AppInfo
	for _, a := range apps {
		fmt.Printf("  %-22s %-12s host=%s privilege=%s\n", a.ID, a.Name, a.Server, a.Privilege)
		if a.Server == "rutgers" {
			target = a
		}
	}
	if target.ID == "" {
		log.Fatal("rutgers application not visible from caltech")
	}

	// Connect to the remote application: level-two authorization happens
	// at rutgers, the subscription relays its group traffic to caltech.
	priv, err := vijay.ConnectApp(ctx, target.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vijay connected to %s with privilege %s (authorized by its host server)\n", target.ID, priv)

	vijay.StartPump(nil)
	defer vijay.StopPump()

	// The distributed lock: state lives at rutgers only.
	granted, _, err := vijay.AcquireLock(ctx)
	if err != nil || !granted {
		log.Fatalf("remote lock: %v %v", granted, err)
	}
	holder, held := rutgers.Server.Locks().Holder(target.ID)
	fmt.Printf("steering lock held at rutgers by %q (held=%v)\n", holder, held)

	// Steer across the WAN.
	resp, err := vijay.Do(ctx, "set_param", map[string]string{"name": "source_freq", "value": "0.11"})
	if err != nil || resp.Kind != wire.KindResponse {
		log.Fatalf("remote steering failed: %v %v", resp, err)
	}
	fmt.Println("vijay steered rutgers' seismic source_freq to 0.11 from caltech")

	// manish joins the same group from utexas; chat spans three servers.
	manish := discover.NewClient(utexas.BaseURL())
	if err := manish.Login(ctx, "manish", "pw"); err != nil {
		log.Fatal(err)
	}
	if _, err := manish.ConnectApp(ctx, target.ID); err != nil {
		log.Fatal(err)
	}
	heard := make(chan string, 4)
	manish.StartPump(func(m *wire.Message) {
		if m.Kind == wire.KindChat {
			u, _ := m.Get("user")
			heard <- fmt.Sprintf("%s: %s", u, m.Text)
		}
	})
	defer manish.StopPump()

	if err := vijay.Chat(ctx, "crossing two domains to say hi"); err != nil {
		log.Fatal(err)
	}
	select {
	case line := <-heard:
		fmt.Printf("manish (at utexas) heard %q — relayed caltech→rutgers→utexas\n", line)
	case <-time.After(15 * time.Second):
		log.Fatal("cross-domain chat never arrived")
	}
	vijay.ReleaseLock(ctx)
	fmt.Println("global access demo complete")
}
