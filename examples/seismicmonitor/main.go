// Seismic monitoring portal: visualization views and detachable clients.
//
// A geophysicist steers a 1-D seismic forward model, pulls wavefield
// *views* (the downsampled field snapshots DISCOVER portals visualize) and
// renders them as terminal seismograms. Mid-session she detaches — the
// portal object is discarded entirely — and later re-attaches from a
// "different browser": the session, its buffered updates, application
// binding and capability all survived at the server, exactly the
// detachable-portal behaviour the paper describes.
//
//	go run ./examples/seismicmonitor
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"discover"
	"discover/internal/app"
	"discover/internal/wire"
)

func main() {
	domain, err := discover.StartDomain(discover.DomainConfig{
		Name:     "observatory",
		HTTPAddr: "127.0.0.1:0",
		Users:    map[string]string{"ada": "pw"},
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer domain.Close()

	kernel, _ := discover.NewKernel("seismic-1d")
	appl, err := discover.NewApplication(context.Background(), domain.DaemonAddr(), discover.AppConfig{
		Name:   "crust-model",
		Kernel: kernel,
		Users:  []discover.UserGrant{{User: "ada", Privilege: "steer"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer appl.Close()
	runCtx, stopApp := context.WithCancel(context.Background())
	defer stopApp()
	go appl.Run(runCtx)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	client := discover.NewClient(domain.BaseURL())
	if err := client.Login(ctx, "ada", "pw"); err != nil {
		log.Fatal(err)
	}
	if _, err := client.ConnectApp(ctx, appl.ID()); err != nil {
		log.Fatal(err)
	}
	client.StartPump(nil)

	// Let the wavefield develop, then render a view.
	fetchView := func(c *discover.Client) app.FieldView {
		resp, err := c.Do(ctx, "view", map[string]string{"name": "wavefield", "max_points": "72"})
		if err != nil || resp.Kind != wire.KindResponse {
			log.Fatalf("view: %v %v", resp, err)
		}
		v, err := app.DecodeFieldView(resp.Data)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	time.Sleep(300 * time.Millisecond)
	before := fetchView(client)
	fmt.Println("wavefield at the default source frequency:")
	fmt.Print(before.RenderASCII(72))

	// Steer the source frequency up and watch the wavelength shorten.
	if granted, _, err := client.AcquireLock(ctx); err != nil || !granted {
		log.Fatalf("lock: %v %v", granted, err)
	}
	if _, err := client.Do(ctx, "set_param", map[string]string{"name": "source_freq", "value": "0.15"}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("steered source_freq 0.05 → 0.15; letting the wavefield evolve …")

	// Detach: the portal object goes away, the session stays server-side.
	handle := client.Detach()
	client = nil
	fmt.Printf("detached (handle: client %s); updates keep buffering at the server\n", handle.ClientID)
	time.Sleep(400 * time.Millisecond)

	// Re-attach from a "new browser".
	resumed := discover.NewClient(domain.BaseURL())
	appID, priv, err := resumed.Attach(ctx, handle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-attached to %s (privilege %s intact)\n", appID, priv)
	buffered, err := resumed.Poll(ctx, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	updates := 0
	for _, m := range buffered {
		if m.Kind == wire.KindUpdate {
			updates++
		}
	}
	fmt.Printf("drained %d updates buffered across the detach window\n", updates)
	if updates == 0 {
		log.Fatal("nothing buffered while detached")
	}

	resumed.StartPump(nil)
	defer resumed.StopPump()
	after := fetchView(resumed)
	fmt.Println("wavefield after steering (still holding the lock from before the detach):")
	fmt.Print(after.RenderASCII(72))
	if err := resumed.ReleaseLock(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("seismic monitoring session complete")
}
