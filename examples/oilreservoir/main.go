// Oil-reservoir collaboratory: the collaborative-engineering scenario the
// paper's introduction motivates.
//
// Three people share one running reservoir simulation:
//
//   - alice (steer) drives the injection schedule under the steering lock,
//
//   - bob (monitor) watches updates and alice's shared responses but is
//     denied steering by the ACL,
//
//   - carol joins late, catches up from the whiteboard replay and the
//     session archive, then takes the lock after alice releases it.
//
//     go run ./examples/oilreservoir
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"discover"
	"discover/internal/wire"
)

func main() {
	domain, err := discover.StartDomain(discover.DomainConfig{
		Name:     "csm",
		HTTPAddr: "127.0.0.1:0",
		Users: map[string]string{
			"alice": "pw", "bob": "pw", "carol": "pw",
		},
		Logf: func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer domain.Close()

	kernel, _ := discover.NewKernel("oil-reservoir")
	appl, err := discover.NewApplication(context.Background(), domain.DaemonAddr(), discover.AppConfig{
		Name:   "gulf-block-7",
		Kernel: kernel,
		Owner:  "alice",
		Users: []discover.UserGrant{
			{User: "alice", Privilege: "steer"},
			{User: "bob", Privilege: "monitor"},
			{User: "carol", Privilege: "steer"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer appl.Close()
	runCtx, stopApp := context.WithCancel(context.Background())
	defer stopApp()
	go appl.Run(runCtx)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	login := func(user string) *discover.Client {
		c := discover.NewClient(domain.BaseURL())
		if err := c.Login(ctx, user, "pw"); err != nil {
			log.Fatalf("%s login: %v", user, err)
		}
		priv, err := c.ConnectApp(ctx, appl.ID())
		if err != nil {
			log.Fatalf("%s connect: %v", user, err)
		}
		fmt.Printf("%s joined the collaboration group (privilege %s)\n", user, priv)
		return c
	}

	alice := login("alice")
	bob := login("bob")

	// bob's pump collects what the group shares with him.
	bobChat := make(chan string, 16)
	bobShared := make(chan *wire.Message, 64)
	bob.StartPump(func(m *wire.Message) {
		switch m.Kind {
		case wire.KindChat:
			u, _ := m.Get("user")
			bobChat <- fmt.Sprintf("%s: %s", u, m.Text)
		case wire.KindResponse:
			bobShared <- m
		}
	})
	defer bob.StopPump()
	alice.StartPump(nil)
	defer alice.StopPump()

	// The ACL denies bob the lock and steering.
	if _, _, err := bob.AcquireLock(ctx); err == nil {
		log.Fatal("monitor user acquired the steering lock?!")
	}
	fmt.Println("bob (monitor) correctly denied the steering lock")

	// alice drives: lock, annotate, steer in two steps.
	if granted, _, _ := alice.AcquireLock(ctx); !granted {
		log.Fatal("alice could not take the lock")
	}
	alice.Chat(ctx, "raising injection to probe the pressure response")
	alice.Whiteboard(ctx, []byte(`{"shape":"arrow","at":"injector"}`))
	for _, rate := range []string{"2.0", "3.5"} {
		resp, err := alice.Do(ctx, "set_param", map[string]string{"name": "injection_rate", "value": rate})
		if err != nil || resp.Kind != wire.KindResponse {
			log.Fatalf("steer to %s failed: %v %v", rate, resp, err)
		}
		fmt.Printf("alice steered injection_rate to %s\n", rate)
	}

	// bob sees the chat and, since both have collaboration enabled, the
	// shared steering responses.
	fmt.Printf("bob heard: %q\n", <-bobChat)
	shared := <-bobShared
	fmt.Printf("bob saw alice's shared response: %s %s\n", shared.Op, shared.Text)

	// alice hands the lock over.
	alice.ReleaseLock(ctx)
	fmt.Println("alice released the steering lock")

	// carol arrives late: whiteboard replays on join, the archive replays
	// the session so far, then she takes over steering.
	carol := login("carol")
	carolWB := make(chan []byte, 16)
	carol.StartPump(func(m *wire.Message) {
		if m.Kind == wire.KindWhiteboard {
			carolWB <- m.Data
		}
	})
	defer carol.StopPump()
	select {
	case stroke := <-carolWB:
		fmt.Printf("carol replayed whiteboard stroke: %s\n", stroke)
	case <-time.After(10 * time.Second):
		log.Fatal("carol never received the whiteboard replay")
	}
	replay, err := carol.Replay(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	steers := 0
	for _, e := range replay.Entries {
		if e.Msg.Kind == wire.KindCommand && e.Msg.Op == "set_param" {
			steers++
		}
	}
	fmt.Printf("carol's session replay shows %d archived steering commands\n", steers)

	if granted, holder, _ := carol.AcquireLock(ctx); !granted {
		log.Fatalf("carol could not take the lock (holder %s)", holder)
	}
	resp, err := carol.Do(ctx, "set_param", map[string]string{"name": "production_rate", "value": "1.5"})
	if err != nil || resp.Kind != wire.KindResponse {
		log.Fatalf("carol steer failed: %v %v", resp, err)
	}
	fmt.Println("carol now drives the simulation (production_rate = 1.5)")

	// The record database holds the session's generated data under the
	// right owners.
	recs, err := alice.Records(ctx, "responses", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice's visible response records: %d\n", len(recs))
	fmt.Println("collaborative session complete")
}
