// Quickstart: one collaboratory domain, one steerable application, one
// web-portal client.
//
// The client logs in, discovers the application, takes the steering lock,
// doubles the injection rate of an oil-reservoir simulation and watches
// the average pressure respond in the periodic updates.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"discover"
	"discover/internal/wire"
)

func main() {
	// 1. Start a standalone domain (server + application daemon + portal).
	domain, err := discover.StartDomain(discover.DomainConfig{
		Name:     "quickstart",
		HTTPAddr: "127.0.0.1:0",
		Users:    map[string]string{"alice": "wonderland"},
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer domain.Close()
	fmt.Printf("domain %q: portal %s, daemon %s\n",
		domain.Server.Name(), domain.BaseURL(), domain.DaemonAddr())

	// 2. Connect an oil-reservoir simulation to the domain.
	kernel, err := discover.NewKernel("oil-reservoir")
	if err != nil {
		log.Fatal(err)
	}
	appl, err := discover.NewApplication(context.Background(), domain.DaemonAddr(), discover.AppConfig{
		Name:   "reservoir",
		Kernel: kernel,
		Users:  []discover.UserGrant{{User: "alice", Privilege: "steer"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer appl.Close()
	runCtx, stopApp := context.WithCancel(context.Background())
	defer stopApp()
	go appl.Run(runCtx)
	fmt.Printf("application %q registered\n", appl.ID())

	// 3. A portal client logs in and connects.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := discover.NewClient(domain.BaseURL())
	if err := client.Login(ctx, "alice", "wonderland"); err != nil {
		log.Fatal(err)
	}
	apps, err := client.Apps(ctx)
	if err != nil || len(apps) == 0 {
		log.Fatalf("no applications visible: %v", err)
	}
	fmt.Printf("visible applications: %d (first: %s on %s, privilege %s)\n",
		len(apps), apps[0].Name, apps[0].Server, apps[0].Privilege)
	if _, err := client.ConnectApp(ctx, apps[0].ID); err != nil {
		log.Fatal(err)
	}

	// 4. Watch updates through the poll pump.
	pressure := make(chan float64, 64)
	client.StartPump(func(m *wire.Message) {
		if m.Kind == wire.KindUpdate {
			if p, ok := m.GetFloat("m.avg_pressure"); ok {
				select {
				case pressure <- p:
				default:
				}
			}
		}
	})
	defer client.StopPump()

	before := <-pressure
	fmt.Printf("avg pressure before steering: %.4f\n", before)

	// 5. Take the lock and steer.
	granted, holder, err := client.AcquireLock(ctx)
	if err != nil || !granted {
		log.Fatalf("lock: granted=%v holder=%q err=%v", granted, holder, err)
	}
	resp, err := client.Do(ctx, "set_param", map[string]string{
		"name": "injection_rate", "value": "4.0",
	})
	if err != nil || resp.Kind != wire.KindResponse {
		log.Fatalf("steering failed: %v %v", resp, err)
	}
	fmt.Println("steered injection_rate to 4.0")
	client.ReleaseLock(ctx)

	// 6. The pressure rises in response.
	deadline := time.After(20 * time.Second)
	for {
		select {
		case p := <-pressure:
			if p > before*1.5 {
				fmt.Printf("avg pressure after steering: %.4f (was %.4f) — steering observed\n", p, before)
				return
			}
		case <-deadline:
			log.Fatal("pressure never responded to steering")
		}
	}
}
