// Grid services — the "pool of services" model of the paper's Section 3.
//
// Not every resource on the grid is a full DISCOVER server: a service may
// expose only the second-level interface (a single service instance, like
// a monitoring or archival service built on a CoG kit). Such services
// export a trader offer under their own service type with a property
// list; any collaboratory can discover them at runtime by constraint
// query and invoke them directly over the middleware — their availability
// "is not guaranteed and must be determined at runtime", which the offer
// lease enforces.
//
// This example runs two standalone metric-archive services at different
// sites, has a DISCOVER domain discover the one matching a constraint
// ("site == 'piscataway' and free_gb > 100"), pushes simulation metrics
// into it, reads them back, and then shows the lease expiring when the
// service stops refreshing.
//
//	go run ./examples/gridservices
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"discover/internal/orb"
)

// archiveService is a minimal level-two-only grid service: it stores
// named metric series.
type archiveService struct {
	name string
	mu   sync.Mutex
	data map[string][]float64
}

type (
	putReq struct {
		Series string
		Value  float64
	}
	putResp struct{ Len int }
	getReq  struct{ Series string }
	getResp struct{ Values []float64 }
	lsResp  struct{ Series []string }
)

func (a *archiveService) servant() orb.Servant {
	return orb.MethodMap{
		"put": orb.Handler(func(r putReq) (putResp, error) {
			a.mu.Lock()
			defer a.mu.Unlock()
			a.data[r.Series] = append(a.data[r.Series], r.Value)
			return putResp{Len: len(a.data[r.Series])}, nil
		}),
		"get": orb.Handler(func(r getReq) (getResp, error) {
			a.mu.Lock()
			defer a.mu.Unlock()
			vals, ok := a.data[r.Series]
			if !ok {
				return getResp{}, &orb.RemoteError{Code: "NO_SERIES", Msg: r.Series}
			}
			return getResp{Values: append([]float64(nil), vals...)}, nil
		}),
		"list": orb.Handler(func(struct{}) (lsResp, error) {
			a.mu.Lock()
			defer a.mu.Unlock()
			var names []string
			for s := range a.data {
				names = append(names, s)
			}
			sort.Strings(names)
			return lsResp{Series: names}, nil
		}),
	}
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// The federation's trader.
	traderORB := orb.New()
	if err := traderORB.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer traderORB.Close()
	traderORB.Register(orb.TraderKey, orb.NewTrader(orb.WithOfferTTL(time.Hour)).Servant())
	traderRef := orb.ObjRef{Addr: traderORB.Addr(), Key: orb.TraderKey}
	fmt.Printf("trader at %s\n", traderORB.Addr())

	// Two archive services at different sites join the pool.
	type deployed struct {
		svc     *archiveService
		orb     *orb.ORB
		offerID string
	}
	deploy := func(name, site, freeGB string, ttl time.Duration) deployed {
		o := orb.New()
		if err := o.Listen("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		svc := &archiveService{name: name, data: make(map[string][]float64)}
		o.Register("archive", svc.servant())
		tc := orb.NewTraderClient(o, traderRef)
		offerID, err := tc.Export(ctx, "METRIC_ARCHIVE", o.Ref("archive"), map[string]string{
			"name": name, "site": site, "free_gb": freeGB,
		}, ttl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("service %q exported offer %s (site=%s free_gb=%s, lease %s)\n",
			name, offerID, site, freeGB, ttl)
		return deployed{svc: svc, orb: o, offerID: offerID}
	}
	east := deploy("archive-east", "piscataway", "250", time.Hour)
	defer east.orb.Close()
	west := deploy("archive-west", "pasadena", "40", time.Hour)
	defer west.orb.Close()

	// A consumer (this could be a DISCOVER server's auxiliary handler)
	// discovers the pool at runtime by constraint.
	consumer := orb.New()
	defer consumer.Close()
	tc := orb.NewTraderClient(consumer, traderRef)

	all, err := tc.Query(ctx, "METRIC_ARCHIVE", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool has %d archive services\n", len(all))

	constraint := "site == 'piscataway' and free_gb > 100"
	matches, err := tc.Query(ctx, "METRIC_ARCHIVE", constraint)
	if err != nil {
		log.Fatal(err)
	}
	if len(matches) != 1 {
		log.Fatalf("constraint %q matched %d offers, want 1", constraint, len(matches))
	}
	chosen := matches[0]
	fmt.Printf("constraint %q selected %s at %s\n", constraint, chosen.Props["name"], chosen.Ref)

	// Push simulation metrics into the chosen archive and read them back.
	for i, v := range []float64{0.32, 0.35, 0.41, 0.44} {
		var pr putResp
		if err := consumer.Invoke(ctx, chosen.Ref, "put",
			putReq{Series: "avg_pressure", Value: v}, &pr); err != nil {
			log.Fatal(err)
		}
		if pr.Len != i+1 {
			log.Fatalf("series length = %d, want %d", pr.Len, i+1)
		}
	}
	var got getResp
	if err := consumer.Invoke(ctx, chosen.Ref, "get", getReq{Series: "avg_pressure"}, &got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived series avg_pressure = %v\n", got.Values)

	var ls lsResp
	if err := consumer.Invoke(ctx, chosen.Ref, "list", struct{}{}, &ls); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series stored at %s: %v\n", chosen.Props["name"], ls.Series)

	// Error propagation across the middleware.
	err = consumer.Invoke(ctx, chosen.Ref, "get", getReq{Series: "nosuch"}, &got)
	if !orb.IsRemote(err, "NO_SERIES") {
		log.Fatalf("expected NO_SERIES error, got %v", err)
	}
	fmt.Println("typed remote errors propagate (NO_SERIES)")

	// Availability is a runtime property: west withdraws (service going
	// down for maintenance) and vanishes from queries immediately;
	// unrefreshed leases would expire the same way.
	if err := tc.Withdraw(ctx, west.offerID); err != nil {
		log.Fatal(err)
	}
	remaining, err := tc.Query(ctx, "METRIC_ARCHIVE", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after archive-west withdrew, the pool has %d service(s): %s\n",
		len(remaining), remaining[0].Props["name"])
	fmt.Println("pool-of-services demo complete")
}
